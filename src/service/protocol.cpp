#include "service/protocol.h"

#include "util/canonical_json.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace adapipe {

namespace {

/** Wire name -> preset; nullptr-equivalent reported via fail(). */
ModelConfig
modelByName(const std::string &name, const JsonReader &where)
{
    if (name == "gpt3")
        return gpt3_175b();
    if (name == "llama2")
        return llama2_70b();
    if (name == "gpt3-13b")
        return gpt3_13b();
    if (name == "gpt3-6.7b")
        return gpt3_6_7b();
    if (name == "llama2-13b")
        return llama2_13b();
    if (name == "tiny-test")
        return tinyTestModel();
    where.fail("unknown model '" + name +
               "' (expected gpt3|llama2|gpt3-13b|gpt3-6.7b|"
               "llama2-13b|tiny-test)");
}

PlanMethod
methodByName(const std::string &name, const JsonReader &where)
{
    if (name == "adapipe")
        return PlanMethod::AdaPipe;
    if (name == "even")
        return PlanMethod::EvenPartition;
    if (name == "dapple-full")
        return PlanMethod::DappleFull;
    if (name == "dapple-non")
        return PlanMethod::DappleNon;
    if (name == "dapple-selective")
        return PlanMethod::DappleSelective;
    where.fail("unknown method '" + name +
               "' (expected adapipe|even|dapple-full|dapple-non|"
               "dapple-selective)");
}

const char *
methodWireName(PlanMethod method)
{
    switch (method) {
      case PlanMethod::AdaPipe:
        return "adapipe";
      case PlanMethod::EvenPartition:
        return "even";
      case PlanMethod::DappleFull:
        return "dapple-full";
      case PlanMethod::DappleNon:
        return "dapple-non";
      case PlanMethod::DappleSelective:
        return "dapple-selective";
    }
    ADAPIPE_FATAL("unhandled plan method");
}

int
positiveInt(const JsonReader &node)
{
    const std::int64_t v = node.asInteger();
    if (v < 1 || v > 1'000'000'000)
        node.fail("expected a positive integer");
    return static_cast<int>(v);
}

PlanRequest
readPlanRequest(const JsonReader &plan)
{
    PlanRequest req;
    if (plan.has("model"))
        req.model = plan.key("model").asString();
    // Resolve now so an unknown name fails at the field that named
    // it (or at the plan object when the default is somehow bad).
    const JsonReader model_node =
        plan.has("model") ? plan.key("model") : plan;
    const ModelConfig model = modelByName(req.model, model_node);
    if (plan.has("cluster")) {
        const JsonReader cluster = plan.key("cluster");
        if (cluster.has("name")) {
            req.clusterName = cluster.key("name").asString();
            if (req.clusterName != "a" && req.clusterName != "b") {
                cluster.key("name").fail(
                    "unknown cluster '" + req.clusterName +
                    "' (expected a|b)");
            }
        }
        if (cluster.has("nodes"))
            req.clusterNodes = positiveInt(cluster.key("nodes"));
    }
    if (plan.has("train")) {
        const JsonReader train = plan.key("train");
        if (train.has("micro_batch"))
            req.train.microBatch =
                positiveInt(train.key("micro_batch"));
        if (train.has("seq_len"))
            req.train.seqLen = positiveInt(train.key("seq_len"));
        if (train.has("global_batch"))
            req.train.globalBatch =
                positiveInt(train.key("global_batch"));
    }
    if (plan.has("parallel")) {
        const JsonReader par = plan.key("parallel");
        if (par.has("tensor"))
            req.par.tensor = positiveInt(par.key("tensor"));
        if (par.has("pipeline"))
            req.par.pipeline = positiveInt(par.key("pipeline"));
        if (par.has("data"))
            req.par.data = positiveInt(par.key("data"));
        if (par.has("sequence_parallel"))
            req.par.sequenceParallel =
                par.key("sequence_parallel").asBool();
        if (par.has("flash_attention"))
            req.par.flashAttention =
                par.key("flash_attention").asBool();
    }
    if (plan.has("method")) {
        req.method =
            methodByName(plan.key("method").asString(),
                         plan.key("method"));
    }
    if (plan.has("schedule")) {
        const JsonReader schedule = plan.key("schedule");
        if (schedule.has("family")) {
            req.scheduleFamily = schedule.key("family").asString();
            if (req.scheduleFamily != "1f1b" &&
                req.scheduleFamily != "interleaved" &&
                req.scheduleFamily != "best") {
                schedule.key("family").fail(
                    "unknown schedule family '" +
                    req.scheduleFamily +
                    "' (expected 1f1b|interleaved|best)");
            }
        }
        if (schedule.has("virtual_stages")) {
            req.virtualStages =
                positiveInt(schedule.key("virtual_stages"));
        }
    }
    if (plan.has("offload")) {
        const JsonReader offload = plan.key("offload");
        if (offload.has("enabled"))
            req.offload = offload.key("enabled").asBool();
        if (offload.has("bandwidth")) {
            req.offloadBandwidth =
                offload.key("bandwidth").asNumber();
            if (!(req.offloadBandwidth > 0)) {
                offload.key("bandwidth")
                    .fail("bandwidth must be > 0 bytes/s");
            }
        }
        if (offload.has("overlap_fraction")) {
            req.offloadOverlapFraction =
                offload.key("overlap_fraction").asNumber();
            if (req.offloadOverlapFraction < 0 ||
                req.offloadOverlapFraction > 1.0) {
                offload.key("overlap_fraction")
                    .fail("overlap_fraction must be in [0, 1]");
            }
        }
    }
    if (plan.has("mem_budget_fraction")) {
        req.memBudgetFraction =
            plan.key("mem_budget_fraction").asNumber();
        if (req.memBudgetFraction <= 0 ||
            req.memBudgetFraction > 1.0) {
            plan.key("mem_budget_fraction")
                .fail("mem_budget_fraction must be in (0, 1]");
        }
    }

    // Cross-field validation: everything that would otherwise trip a
    // fatal assertion in the profiler or planner aborts the *request*
    // here instead of the server.
    const ClusterSpec cluster = req.clusterSpec();
    if (req.par.tensor > cluster.devicesPerNode) {
        plan.fail("parallel.tensor " +
                  std::to_string(req.par.tensor) +
                  " exceeds devices per node " +
                  std::to_string(cluster.devicesPerNode));
    }
    if (req.par.totalDevices() > cluster.totalDevices()) {
        plan.fail("parallel strategy needs " +
                  std::to_string(req.par.totalDevices()) +
                  " devices but the cluster has " +
                  std::to_string(cluster.totalDevices()));
    }
    if (model.numHeads % req.par.tensor != 0 ||
        model.numKvHeads % req.par.tensor != 0) {
        plan.fail("parallel.tensor " +
                  std::to_string(req.par.tensor) +
                  " does not divide the head counts of " +
                  model.name);
    }
    if (req.par.pipeline > model.numBlocks + 2) {
        plan.fail("parallel.pipeline " +
                  std::to_string(req.par.pipeline) +
                  " exceeds the model's " +
                  std::to_string(model.numBlocks + 2) + " layers");
    }
    const int denom = req.train.microBatch * req.par.data;
    if (req.train.globalBatch % denom != 0) {
        plan.fail("train.global_batch " +
                  std::to_string(req.train.globalBatch) +
                  " not divisible by micro_batch*data = " +
                  std::to_string(denom));
    }
    if (req.scheduleFamily != "interleaved")
        req.virtualStages = req.scheduleFamily == "1f1b" ? 1 : 0;
    return req;
}

DegradedScenario
readFault(const JsonReader &fault)
{
    DegradedScenario scenario;
    if (fault.has("straggler_stage")) {
        const std::int64_t s =
            fault.key("straggler_stage").asInteger();
        if (s < -1)
            fault.key("straggler_stage")
                .fail("straggler_stage must be >= -1");
        scenario.stragglerStage = static_cast<int>(s);
    }
    if (fault.has("straggler_factor")) {
        scenario.stragglerFactor =
            fault.key("straggler_factor").asNumber();
        if (scenario.stragglerFactor < 1.0)
            fault.key("straggler_factor")
                .fail("straggler_factor must be >= 1");
    }
    if (fault.has("mem_factor")) {
        scenario.memFactor = fault.key("mem_factor").asNumber();
        if (scenario.memFactor <= 0 || scenario.memFactor > 1.0)
            fault.key("mem_factor")
                .fail("mem_factor must be in (0, 1]");
    }
    if (fault.has("lost_stages")) {
        const std::int64_t lost =
            fault.key("lost_stages").asInteger();
        if (lost < 0)
            fault.key("lost_stages")
                .fail("lost_stages must be >= 0");
        scenario.lostStages = static_cast<int>(lost);
    }
    if (fault.has("host_link_factor")) {
        scenario.hostLinkFactor =
            fault.key("host_link_factor").asNumber();
        if (scenario.hostLinkFactor <= 0 ||
            scenario.hostLinkFactor > 1.0) {
            fault.key("host_link_factor")
                .fail("host_link_factor must be in (0, 1]");
        }
    }
    return scenario;
}

} // namespace

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Plan:
        return "plan";
      case RequestKind::Explain:
        return "explain";
      case RequestKind::Replan:
        return "replan";
      case RequestKind::Stats:
        return "stats";
      case RequestKind::Shutdown:
        return "shutdown";
    }
    ADAPIPE_FATAL("unhandled request kind");
}

ModelConfig
PlanRequest::modelConfig() const
{
    if (model == "gpt3")
        return gpt3_175b();
    if (model == "llama2")
        return llama2_70b();
    if (model == "gpt3-13b")
        return gpt3_13b();
    if (model == "gpt3-6.7b")
        return gpt3_6_7b();
    if (model == "llama2-13b")
        return llama2_13b();
    if (model == "tiny-test")
        return tinyTestModel();
    ADAPIPE_FATAL("unvalidated model name '", model, "'");
}

ClusterSpec
PlanRequest::clusterSpec() const
{
    if (clusterName == "a")
        return clusterA(clusterNodes);
    if (clusterName == "b")
        return clusterB(clusterNodes);
    ADAPIPE_FATAL("unvalidated cluster name '", clusterName, "'");
}

ParseResult<ServiceRequest>
tryServiceRequestFromJsonString(const std::string &line)
{
    ParseResult<JsonValue> json = JsonValue::tryParse(line);
    if (!json.ok())
        return ParseResult<ServiceRequest>::failure(json.error());
    return readJson<ServiceRequest>(
        json.value(), "service", [](JsonReader root) {
            ServiceRequest req;
            const std::string kind = root.key("kind").asString();
            if (kind == "plan") {
                req.kind = RequestKind::Plan;
            } else if (kind == "explain") {
                req.kind = RequestKind::Explain;
            } else if (kind == "replan") {
                req.kind = RequestKind::Replan;
            } else if (kind == "stats") {
                req.kind = RequestKind::Stats;
                return req;
            } else if (kind == "shutdown") {
                req.kind = RequestKind::Shutdown;
                return req;
            } else {
                root.key("kind").fail(
                    "unknown request kind '" + kind +
                    "' (expected plan|explain|replan|stats|"
                    "shutdown)");
            }
            req.plan = readPlanRequest(root.key("plan"));
            if (req.kind == RequestKind::Replan) {
                if (root.has("fault"))
                    req.fault = readFault(root.key("fault"));
            } else if (root.has("fault")) {
                root.key("fault").fail(
                    "fault reports are only valid on replan "
                    "requests");
            }
            return req;
        });
}

JsonValue
planRequestToJson(const PlanRequest &request)
{
    JsonValue root = JsonValue::object();
    root.set("model", JsonValue::string(request.model));
    JsonValue cluster = JsonValue::object();
    cluster.set("name", JsonValue::string(request.clusterName));
    cluster.set("nodes", JsonValue::integer(request.clusterNodes));
    root.set("cluster", std::move(cluster));
    JsonValue train = JsonValue::object();
    train.set("micro_batch",
              JsonValue::integer(request.train.microBatch));
    train.set("seq_len", JsonValue::integer(request.train.seqLen));
    train.set("global_batch",
              JsonValue::integer(request.train.globalBatch));
    root.set("train", std::move(train));
    JsonValue par = JsonValue::object();
    par.set("tensor", JsonValue::integer(request.par.tensor));
    par.set("pipeline", JsonValue::integer(request.par.pipeline));
    par.set("data", JsonValue::integer(request.par.data));
    par.set("sequence_parallel",
            JsonValue::boolean(request.par.sequenceParallel));
    par.set("flash_attention",
            JsonValue::boolean(request.par.flashAttention));
    root.set("parallel", std::move(par));
    root.set("method",
             JsonValue::string(methodWireName(request.method)));
    JsonValue schedule = JsonValue::object();
    schedule.set("family",
                 JsonValue::string(request.scheduleFamily));
    schedule.set("virtual_stages",
                 JsonValue::integer(request.virtualStages));
    root.set("schedule", std::move(schedule));
    root.set("mem_budget_fraction",
             JsonValue::number(request.memBudgetFraction));
    JsonValue offload = JsonValue::object();
    offload.set("enabled", JsonValue::boolean(request.offload));
    offload.set("bandwidth",
                JsonValue::number(request.offloadBandwidth));
    offload.set("overlap_fraction",
                JsonValue::number(request.offloadOverlapFraction));
    root.set("offload", std::move(offload));
    return root;
}

std::string
requestFingerprint(const PlanRequest &request)
{
    return jsonFingerprint(planRequestToJson(request));
}

JsonValue
faultToJson(const DegradedScenario &fault)
{
    JsonValue root = JsonValue::object();
    root.set("straggler_stage",
             JsonValue::integer(fault.stragglerStage));
    root.set("straggler_factor",
             JsonValue::number(fault.stragglerFactor));
    root.set("mem_factor", JsonValue::number(fault.memFactor));
    root.set("lost_stages", JsonValue::integer(fault.lostStages));
    root.set("host_link_factor",
             JsonValue::number(fault.hostLinkFactor));
    return root;
}

std::string
errorResponse(const std::string &kind, const std::string &error)
{
    JsonValue root = JsonValue::object();
    root.set("ok", JsonValue::boolean(false));
    if (!kind.empty())
        root.set("kind", JsonValue::string(kind));
    root.set("error", JsonValue::string(error));
    return root.dump(0);
}

JsonValue
successEnvelope(const std::string &kind)
{
    JsonValue root = JsonValue::object();
    root.set("ok", JsonValue::boolean(true));
    root.set("kind", JsonValue::string(kind));
    return root;
}

} // namespace adapipe
