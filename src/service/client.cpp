#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace adapipe {

PlanClient::~PlanClient()
{
    close();
}

ParseStatus
PlanClient::connect(const std::string &host, int port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        return ParseStatus::failure(std::string("socket: ") +
                                    std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return ParseStatus::failure("invalid address '" + host +
                                    "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        close();
        return ParseStatus::failure("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    err);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return parseOk();
}

ParseResult<std::string>
PlanClient::request(const std::string &line)
{
    if (fd_ < 0)
        return ParseResult<std::string>::failure("not connected");

    const std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd_, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return ParseResult<std::string>::failure(
                std::string("send: ") + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }

    char chunk[4096];
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string response = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!response.empty() && response.back() == '\r')
                response.pop_back();
            return ParseResult<std::string>::success(
                std::move(response));
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return ParseResult<std::string>::failure(
                "connection closed before a response arrived");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
PlanClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

ParseResult<std::string>
serviceRequest(const std::string &host, int port,
               const std::string &line)
{
    PlanClient client;
    const ParseStatus connected = client.connect(host, port);
    if (!connected.ok())
        return ParseResult<std::string>::failure(connected.error());
    return client.request(line);
}

} // namespace adapipe
