/**
 * @file
 * Request handlers of the plan service (transport-independent).
 *
 * PlanService turns one request line into one response line; the TCP
 * server (server.h) and the in-process tests call the same
 * handleLine(). State shared across requests:
 *
 *  - a PlanCache of fully rendered response lines keyed by the
 *    canonical request fingerprint (warm requests return the exact
 *    bytes the cold request produced), plus optional on-disk plan
 *    documents surviving restarts;
 *  - a KnapsackMemo threaded into every StageCostCalculator through
 *    StageCostOptions, so sweeps and fault-report series revisiting
 *    identical (stage size, memory budget) subproblems skip the DP.
 *
 * handleLine() is safe to call from many threads at once: the cache
 * and memo lock internally, planning itself is pure, and counters are
 * atomics. Two concurrent cold requests for one fingerprint may both
 * plan — the planner is deterministic, so the duplicate insert is
 * byte-identical and harmless.
 */

#ifndef ADAPIPE_SERVICE_HANDLERS_H
#define ADAPIPE_SERVICE_HANDLERS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/knapsack_memo.h"
#include "service/plan_cache.h"
#include "service/protocol.h"

namespace adapipe {

/** Service configuration. */
struct PlanServiceOptions
{
    /** Response-cache byte budget (keys + values). */
    std::size_t cacheBytes = std::size_t{64} << 20;
    /** Plan-document persistence directory; empty = memory only. */
    std::string persistDir;
};

/**
 * The plan service: parse, dispatch, cache.
 */
class PlanService
{
  public:
    explicit PlanService(PlanServiceOptions opts = {});

    /**
     * Handle one request line (no trailing newline required) and
     * return the single-line JSON response. Never throws and never
     * terminates the process on bad input.
     */
    std::string handleLine(const std::string &line);

    /** @return whether a shutdown request has been handled. */
    bool
    shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /** Shared knapsack memo (exposed for tests and stats). */
    KnapsackMemo &memo() { return memo_; }

    /** Response cache (exposed for tests and stats). */
    PlanCache &cache() { return cache_; }

  private:
    std::string handlePlan(const PlanRequest &request);
    std::string handleExplain(const PlanRequest &request);
    std::string handleReplan(const PlanRequest &request,
                             const DegradedScenario &fault);
    std::string handleStats();

    /**
     * The healthy plan of @p request, through the cache: a cached
     * response line or persisted document is parsed back, a miss
     * plans cold and populates both. Returns the response line via
     * @p response when non-null.
     * @return ok=false with oomReason on infeasible configurations
     */
    PlanResult basePlan(const PlanRequest &request,
                        std::string *response);

    /** Solve the request with the configured schedule family. */
    PlanResult solve(const PlanRequest &request);

    /** Record one request latency. */
    void recordLatency(double us, bool warm);

    PlanServiceOptions opts_;
    PlanCache cache_;
    KnapsackMemo memo_;
    std::atomic<bool> shutdown_{false};

    std::atomic<std::int64_t> requests_{0};
    std::atomic<std::int64_t> plan_requests_{0};
    std::atomic<std::int64_t> explain_requests_{0};
    std::atomic<std::int64_t> replan_requests_{0};
    std::atomic<std::int64_t> stats_requests_{0};
    std::atomic<std::int64_t> errors_{0};

    std::mutex latency_mutex_;
    std::vector<double> cold_us_;
    std::vector<double> warm_us_;
};

} // namespace adapipe

#endif // ADAPIPE_SERVICE_HANDLERS_H
