#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace adapipe {

namespace {

/** Send all of @p data; returns false on a broken connection. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-response must
        // surface as EPIPE here, not kill the server with SIGPIPE.
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

PlanServer::PlanServer(PlanServerOptions opts)
    : opts_(std::move(opts)), service_(opts_.service)
{
    ADAPIPE_ASSERT(opts_.threads >= 1,
                   "server needs at least one worker");
}

PlanServer::~PlanServer()
{
    stop();
}

ParseStatus
PlanServer::start()
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        return ParseStatus::failure(std::string("socket: ") +
                                    std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) !=
        1) {
        closeListener();
        return ParseStatus::failure("invalid bind address '" +
                                    opts_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        closeListener();
        return ParseStatus::failure("bind " + opts_.host + ":" +
                                    std::to_string(opts_.port) +
                                    ": " + err);
    }
    if (::listen(listen_fd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        closeListener();
        return ParseStatus::failure("listen: " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0) {
        port_ = ntohs(bound.sin_port);
    }

    worker_metrics_.resize(static_cast<std::size_t>(opts_.threads));
    for (int i = 0; i < opts_.threads; ++i) {
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return parseOk();
}

void
PlanServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listener closed (or broken) — stop accepting; the
            // workers drain what is already queued.
            break;
        }
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            pending_.push_back(fd);
        }
        queue_cv_.notify_one();
    }
}

void
PlanServer::workerLoop(std::size_t index)
{
    obs::ScopedRegistry scoped(&worker_metrics_[index]);
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return !pending_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (pending_.empty())
                return; // stopping, nothing queued
            fd = pending_.front();
            pending_.pop_front();
        }
        {
            std::lock_guard<std::mutex> lock(active_mutex_);
            active_fds_.push_back(fd);
        }
        handleConnection(fd);
        {
            std::lock_guard<std::mutex> lock(active_mutex_);
            active_fds_.erase(std::remove(active_fds_.begin(),
                                          active_fds_.end(), fd),
                              active_fds_.end());
        }
        ::close(fd);
    }
}

void
PlanServer::handleConnection(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::string buffer;
    char chunk[4096];
    for (;;) {
        // Answer every complete line already buffered.
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string response = service_.handleLine(line);
            if (!sendAll(fd, response + "\n"))
                return;
            if (service_.shutdownRequested()) {
                // Let the shutdown response land, then stop the
                // whole server from outside the worker pool (stop()
                // joins the workers, so it must not run on one).
                std::thread([this] { stop(); }).detach();
                return;
            }
        }
        if (stopping_.load(std::memory_order_acquire))
            return;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // peer closed or connection reset
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

void
PlanServer::closeListener()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
PlanServer::stop()
{
    // First caller wins; later calls (and wait()) just join.
    if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
        // Unblock accept() by shutting the listener down, and wake
        // blocked readers so their workers notice stopping_.
        if (listen_fd_ >= 0)
            ::shutdown(listen_fd_, SHUT_RDWR);
        {
            std::lock_guard<std::mutex> lock(active_mutex_);
            for (int fd : active_fds_)
                ::shutdown(fd, SHUT_RDWR);
        }
        queue_cv_.notify_all();
    }
    std::lock_guard<std::mutex> join(join_mutex_);
    if (joined_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    queue_cv_.notify_all();
    for (std::thread &w : workers_) {
        if (w.joinable())
            w.join();
    }
    // Close any connections that never got a worker.
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
    closeListener();
    for (const obs::Registry &r : worker_metrics_)
        metrics_.merge(r);
    worker_metrics_.clear();
    joined_ = true;
}

void
PlanServer::wait()
{
    // The shutdown path detaches a thread that runs stop(); polling
    // the joined flag keeps wait() safe to call from main while that
    // thread does the joining.
    for (;;) {
        {
            std::lock_guard<std::mutex> join(join_mutex_);
            if (joined_)
                return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

} // namespace adapipe
