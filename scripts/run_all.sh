#!/usr/bin/env sh
# Reproduce everything: build, test, run every benchmark harness.
#
# Usage: scripts/run_all.sh [build-dir]
# Outputs: <build-dir>/../test_output.txt, bench_output.txt, and
# (optionally, with ADAPIPE_CSV_DIR set) CSV files for plotting.
set -eu

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==== $(basename "$b") ====" | tee -a "$ROOT/bench_output.txt"
    "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
    echo | tee -a "$ROOT/bench_output.txt"
done
