#!/usr/bin/env bash
# Regenerate the golden plan fixtures consumed by golden_plan_test.
#
# Run this ONLY when a planner change intentionally alters the plans
# (cost model fix, DP improvement, schema change); commit the diff
# together with the change that caused it and explain the delta in
# the commit message. golden_plan_test failing without a planner
# change means a regression, not a stale fixture.
#
# Usage: scripts/update_golden_plans.sh [build-dir]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
export_plan="$build/examples/export_plan"
fixtures="$repo/tests/fixtures"

if [[ ! -x "$export_plan" ]]; then
    echo "error: $export_plan not built (cmake --build $build)" >&2
    exit 1
fi

# Keep these configurations in lockstep with golden_plan_test.cpp.
"$export_plan" --model gpt3 --seq 16384 --nodes 8 \
    --tensor 8 --pipeline 8 --data 1 --global-batch 32 \
    --method adapipe \
    --plan-out "$fixtures/gpt3_175b_adapipe_plan.json"

"$export_plan" --model llama2 --seq 4096 --nodes 8 \
    --tensor 4 --pipeline 8 --data 2 --global-batch 64 \
    --method adapipe \
    --plan-out "$fixtures/llama2_70b_adapipe_plan.json"

echo "updated fixtures in $fixtures:"
git -C "$repo" status --short tests/fixtures || true
