/**
 * @file
 * Tests for the autograd engine: gradient correctness against finite
 * differences, checkpointing bit-exactness and the activation-memory
 * meter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/checkpoint.h"
#include "autograd/module.h"
#include "autograd/ops.h"
#include "autograd/optim.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace adapipe {
namespace {

/** Numerical gradient of f at x via central differences. */
template <typename F>
Tensor
numericalGrad(F f, Variable &x, float eps = 1e-3f)
{
    Tensor grad(x.value().shape());
    for (std::int64_t i = 0; i < x.value().numel(); ++i) {
        const float orig = x.value()[i];
        x.mutableValue()[i] = orig + eps;
        const float hi = f();
        x.mutableValue()[i] = orig - eps;
        const float lo = f();
        x.mutableValue()[i] = orig;
        grad[i] = (hi - lo) / (2 * eps);
    }
    return grad;
}

void
expectGradNear(const Tensor &analytic, const Tensor &numeric,
               float tol = 2e-2f)
{
    ASSERT_EQ(analytic.numel(), numeric.numel());
    for (std::int64_t i = 0; i < analytic.numel(); ++i) {
        EXPECT_NEAR(analytic[i], numeric[i], tol)
            << "at element " << i;
    }
}

TEST(Autograd, MatmulGradient)
{
    Rng rng(1);
    Variable a(Tensor::randn({3, 4}, rng), true);
    Variable b(Tensor::randn({4, 2}, rng), true);

    auto loss_value = [&]() {
        NoGradGuard guard;
        Variable out = ops::matmul(a, b);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i];
        return sum;
    };

    a.zeroGrad();
    b.zeroGrad();
    Variable out = ops::matmul(a, b);
    out.backward();
    expectGradNear(a.grad(), numericalGrad(loss_value, a));
    expectGradNear(b.grad(), numericalGrad(loss_value, b));
}

TEST(Autograd, GeluGradient)
{
    Rng rng(2);
    Variable x(Tensor::randn({2, 5}, rng), true);
    auto loss_value = [&]() {
        NoGradGuard guard;
        Variable out = ops::gelu(x);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i];
        return sum;
    };
    x.zeroGrad();
    ops::gelu(x).backward();
    expectGradNear(x.grad(), numericalGrad(loss_value, x));
}

TEST(Autograd, LayerNormGradient)
{
    Rng rng(3);
    Variable x(Tensor::randn({3, 6}, rng), true);
    Variable gamma(Tensor::full({6}, 1.2f), true);
    Variable beta(Tensor::full({6}, -0.1f), true);
    auto loss_value = [&]() {
        NoGradGuard guard;
        Variable out = ops::layerNorm(x, gamma, beta);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i] * (i % 3 == 0 ? 1.0f : 0.5f);
        return sum;
    };
    // Weighted sum to break symmetry: re-express as explicit graph.
    x.zeroGrad();
    gamma.zeroGrad();
    beta.zeroGrad();
    Variable out = ops::layerNorm(x, gamma, beta);
    Tensor weights(out.value().shape());
    for (std::int64_t i = 0; i < weights.numel(); ++i)
        weights[i] = i % 3 == 0 ? 1.0f : 0.5f;
    Variable w(std::move(weights), false);
    Variable weighted = ops::mul(out, w);
    weighted.backward();
    expectGradNear(x.grad(), numericalGrad(loss_value, x));
    expectGradNear(gamma.grad(), numericalGrad(loss_value, gamma));
    expectGradNear(beta.grad(), numericalGrad(loss_value, beta));
}

TEST(Autograd, SoftmaxCausalRowsSumToOne)
{
    Rng rng(4);
    Variable x(Tensor::randn({5, 5}, rng), false);
    Variable p = ops::softmaxRows(x, true);
    for (int i = 0; i < 5; ++i) {
        float row = 0;
        for (int j = 0; j < 5; ++j) {
            if (j > i)
                EXPECT_EQ(p.value().at(i, j), 0.0f);
            row += p.value().at(i, j);
        }
        EXPECT_NEAR(row, 1.0f, 1e-5f);
    }
}

TEST(Autograd, CrossEntropyGradient)
{
    Rng rng(5);
    Variable logits(Tensor::randn({4, 7}, rng), true);
    const std::vector<int> targets{1, 3, 0, 6};
    auto loss_value = [&]() {
        NoGradGuard guard;
        return ops::crossEntropy(logits, targets).value()[0];
    };
    logits.zeroGrad();
    ops::crossEntropy(logits, targets).backward();
    expectGradNear(logits.grad(), numericalGrad(loss_value, logits),
                   1e-2f);
}

TEST(Autograd, EmbeddingRoutesGradients)
{
    Variable table(Tensor::full({4, 3}, 0.5f), true);
    table.zeroGrad();
    Variable out = ops::embedding(table, {2, 2, 0});
    out.backward();
    // Row 2 selected twice, row 0 once, rows 1/3 never.
    EXPECT_FLOAT_EQ(table.grad().at(2, 0), 2.0f);
    EXPECT_FLOAT_EQ(table.grad().at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(table.grad().at(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(table.grad().at(3, 0), 0.0f);
}

TEST(Checkpoint, GradientsBitExact)
{
    // The core recomputation invariant: checkpointed and plain
    // execution produce *identical* gradients.
    Rng rng(6);
    const Tensor w_init = Tensor::randn({8, 8}, rng, 0.3f);
    const Tensor x_init = Tensor::randn({4, 8}, rng);

    auto run = [&](bool use_checkpoint) {
        Variable w(w_init, true);
        Variable x(x_init, true);
        w.zeroGrad();
        x.zeroGrad();
        auto segment = [&](const Variable &in) {
            return ops::gelu(ops::matmul(in, w));
        };
        Variable out = use_checkpoint ? checkpoint(segment, x, {w})
                                      : segment(x);
        Variable out2 = ops::gelu(out);
        out2.backward();
        return std::pair<Tensor, Tensor>(w.grad(), x.grad());
    };

    const auto [w_plain, x_plain] = run(false);
    const auto [w_ckpt, x_ckpt] = run(true);
    for (std::int64_t i = 0; i < w_plain.numel(); ++i)
        EXPECT_EQ(w_plain[i], w_ckpt[i]) << "w grad elem " << i;
    for (std::int64_t i = 0; i < x_plain.numel(); ++i)
        EXPECT_EQ(x_plain[i], x_ckpt[i]) << "x grad elem " << i;
}

TEST(Checkpoint, NestedSegments)
{
    Rng rng(7);
    const Tensor w_init = Tensor::randn({6, 6}, rng, 0.3f);
    const Tensor x_init = Tensor::randn({2, 6}, rng);

    auto run = [&](bool ckpt) {
        Variable w(w_init, true);
        Variable x(x_init, true);
        w.zeroGrad();
        x.zeroGrad();
        auto inner = [&](const Variable &in) {
            return ops::gelu(ops::matmul(in, w));
        };
        auto outer = [&](const Variable &in) {
            Variable mid =
                ckpt ? checkpoint(inner, in, {w}) : inner(in);
            return ops::matmul(mid, w);
        };
        Variable out =
            ckpt ? checkpoint(outer, x, {w}) : outer(x);
        out.backward();
        return w.grad();
    };

    const Tensor plain = run(false);
    const Tensor nested = run(true);
    for (std::int64_t i = 0; i < plain.numel(); ++i)
        EXPECT_EQ(plain[i], nested[i]);
}

TEST(Checkpoint, ReducesPeakActivationMemory)
{
    Rng rng(8);
    const int dim = 64;
    const int depth = 6;
    std::vector<Tensor> weights;
    for (int i = 0; i < depth; ++i)
        weights.push_back(Tensor::randn({dim, dim}, rng, 0.1f));
    const Tensor x_init = Tensor::randn({16, dim}, rng);

    auto peak = [&](bool ckpt) {
        std::vector<Variable> ws;
        for (const auto &w : weights)
            ws.emplace_back(w, true);
        Variable x(x_init, true);
        for (auto &w : ws)
            w.zeroGrad();
        x.zeroGrad();
        resetActivationMeter();
        Variable h = x;
        for (int i = 0; i < depth; ++i) {
            auto segment = [&, i](const Variable &in) {
                return ops::gelu(ops::matmul(in, ws[i]));
            };
            h = ckpt ? checkpoint(segment, h, {ws[i]})
                     : segment(h);
        }
        h.backward();
        return peakActivationFloats();
    };

    const auto plain = peak(false);
    const auto saved = peak(true);
    EXPECT_LT(saved, plain);
}

TEST(Optim, SgdDescendsQuadratic)
{
    // Minimise ||x||^2 with SGD; converges to 0.
    Variable x(Tensor::full({4}, 2.0f), true);
    Sgd sgd({x}, 0.1f);
    for (int step = 0; step < 100; ++step) {
        sgd.zeroGrad();
        Variable loss = ops::mul(x, x);
        loss.backward();
        sgd.step();
    }
    for (std::int64_t i = 0; i < x.value().numel(); ++i)
        EXPECT_NEAR(x.value()[i], 0.0f, 1e-3f);
}

TEST(Optim, AdamDescendsQuadratic)
{
    Variable x(Tensor::full({4}, 2.0f), true);
    Adam adam({x}, 0.05f);
    for (int step = 0; step < 400; ++step) {
        adam.zeroGrad();
        Variable loss = ops::mul(x, x);
        loss.backward();
        adam.step();
    }
    for (std::int64_t i = 0; i < x.value().numel(); ++i)
        EXPECT_NEAR(x.value()[i], 0.0f, 1e-2f);
}

TEST(Autograd, NoGradModeBuildsNoGraph)
{
    Rng rng(9);
    Variable a(Tensor::randn({2, 2}, rng), true);
    NoGradGuard guard;
    Variable out = ops::matmul(a, a);
    // Constant leaf: backward from it reaches nothing.
    a.zeroGrad();
    out.backward();
    for (std::int64_t i = 0; i < a.grad().numel(); ++i)
        EXPECT_EQ(a.grad()[i], 0.0f);
}

} // namespace
} // namespace adapipe
