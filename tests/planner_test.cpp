/**
 * @file
 * Tests for the planner facade and the 3D strategy search: method
 * ordering, OOM reporting and the paper's qualitative claims.
 */

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

class PlannerTest : public ::testing::Test
{
  protected:
    // The paper's GPT-3 / cluster A headline configuration: 64 A100s,
    // (t, p, d) = (8, 8, 1).
    ModelConfig model = gpt3_175b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(8);

    void
    SetUp() override
    {
        train.seqLen = 8192;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 8;
        par.data = 1;
    }

    PlanResult
    plan(PlanMethod method)
    {
        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);
        return makePlan(pm, method);
    }
};

TEST_F(PlannerTest, AllMethodsProducePlansWhenMemoryIsAmple)
{
    for (PlanMethod m :
         {PlanMethod::AdaPipe, PlanMethod::EvenPartition,
          PlanMethod::DappleFull}) {
        const PlanResult r = plan(m);
        EXPECT_TRUE(r.ok) << planMethodName(m) << ": " << r.oomReason;
        EXPECT_EQ(static_cast<int>(r.plan.stages.size()),
                  par.pipeline);
    }
}

TEST_F(PlannerTest, MethodOrdering)
{
    // AdaPipe <= Even Partitioning <= DAPPLE-Full in iteration time.
    const PlanResult ada = plan(PlanMethod::AdaPipe);
    const PlanResult even = plan(PlanMethod::EvenPartition);
    const PlanResult full = plan(PlanMethod::DappleFull);
    ASSERT_TRUE(ada.ok && even.ok && full.ok);
    EXPECT_LE(ada.plan.timing.total, even.plan.timing.total + 1e-9);
    EXPECT_LE(even.plan.timing.total, full.plan.timing.total + 1e-9);
}

TEST_F(PlannerTest, DappleNonOomsAtLongSequence)
{
    train.seqLen = 16384;
    train.globalBatch = 16;
    const PlanResult non = plan(PlanMethod::DappleNon);
    EXPECT_FALSE(non.ok);
    EXPECT_NE(non.oomReason.find("stage 0"), std::string::npos)
        << non.oomReason;
    // AdaPipe still fits by recomputing adaptively.
    const PlanResult ada = plan(PlanMethod::AdaPipe);
    EXPECT_TRUE(ada.ok) << ada.oomReason;
}

TEST_F(PlannerTest, PlanStagesCoverModelInOrder)
{
    const PlanResult r = plan(PlanMethod::AdaPipe);
    ASSERT_TRUE(r.ok);
    int next = 0;
    for (const auto &sp : r.plan.stages) {
        EXPECT_EQ(sp.firstLayer, next);
        EXPECT_LE(sp.firstLayer, sp.lastLayer);
        next = sp.lastLayer + 1;
        EXPECT_EQ(static_cast<int>(sp.savedMask.size()),
                  sp.totalUnits);
    }
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    EXPECT_EQ(next, pm.numLayers());
}

TEST_F(PlannerTest, MemoryBudgetRespected)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    for (PlanMethod m :
         {PlanMethod::AdaPipe, PlanMethod::EvenPartition}) {
        const PlanResult r = makePlan(pm, m);
        ASSERT_TRUE(r.ok);
        for (const auto &sp : r.plan.stages)
            EXPECT_LE(sp.memPeak, pm.memCapacity);
    }
}

TEST_F(PlannerTest, SavedUnitsIncreaseWithStage)
{
    // Table 4: the saved-unit count grows with the stage id because
    // later stages hold fewer in-flight micro-batches.
    train.seqLen = 16384;
    train.globalBatch = 16;
    const PlanResult r = plan(PlanMethod::EvenPartition);
    ASSERT_TRUE(r.ok) << r.oomReason;
    const auto &stages = r.plan.stages;
    // The knapsack counts units, not bytes, so adjacent stages can
    // wobble by a few units; the overall trend must rise, and the
    // last interior stage must save clearly more than the first.
    for (std::size_t s = 2; s + 1 < stages.size(); ++s) {
        EXPECT_GE(stages[s].savedUnits + 8, stages[s - 1].savedUnits)
            << "stage " << s;
    }
    EXPECT_GT(stages[stages.size() - 2].savedUnits,
              stages[1].savedUnits);
}

TEST_F(PlannerTest, EvenPartitionUsesBaselineSplit)
{
    const PlanResult even = plan(PlanMethod::EvenPartition);
    const PlanResult full = plan(PlanMethod::DappleFull);
    ASSERT_TRUE(even.ok && full.ok);
    for (std::size_t s = 0; s < even.plan.stages.size(); ++s) {
        EXPECT_EQ(even.plan.stages[s].firstLayer,
                  full.plan.stages[s].firstLayer);
        EXPECT_EQ(even.plan.stages[s].lastLayer,
                  full.plan.stages[s].lastLayer);
    }
}

TEST_F(PlannerTest, TighterMemoryBudgetFractionCostsTime)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    StageCostOptions strict;
    strict.memBudgetFraction = 0.6;
    StageCostOptions loose;
    loose.memBudgetFraction = 0.95;
    const PlanResult a = makePlan(pm, PlanMethod::AdaPipe, strict);
    const PlanResult b = makePlan(pm, PlanMethod::AdaPipe, loose);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_GE(a.plan.timing.total, b.plan.timing.total - 1e-9);
}

class StrategySearchTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 4096;
        train.globalBatch = 64;
    }
};

TEST_F(StrategySearchTest, EnumerationRespectsConstraints)
{
    const auto strategies =
        enumerateStrategies(model, train, cluster);
    EXPECT_FALSE(strategies.empty());
    for (const auto &par : strategies) {
        EXPECT_EQ(par.totalDevices(), cluster.totalDevices());
        EXPECT_LE(par.tensor, 8);
        EXPECT_GE(par.pipeline, 2);
        EXPECT_EQ(model.numHeads % par.tensor, 0);
        const int n = train.microBatches(par);
        EXPECT_GE(n, par.pipeline);
    }
}

TEST_F(StrategySearchTest, BestStrategyIsFeasibleAndMinimal)
{
    const auto best =
        bestStrategy(model, train, cluster, PlanMethod::AdaPipe);
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(best->result.ok);
    for (const auto &r :
         sweepStrategies(model, train, cluster, PlanMethod::AdaPipe)) {
        EXPECT_LE(best->iterationTime(), r.iterationTime() + 1e-9);
    }
}

TEST_F(StrategySearchTest, AdaPipeBestBeatsBaselineBest)
{
    const auto ada =
        bestStrategy(model, train, cluster, PlanMethod::AdaPipe);
    const auto full =
        bestStrategy(model, train, cluster, PlanMethod::DappleFull);
    ASSERT_TRUE(ada.has_value() && full.has_value());
    EXPECT_LT(ada->iterationTime(), full->iterationTime());
}

TEST_F(StrategySearchTest, ParallelSweepMatchesSequential)
{
    StrategySearchOptions seq_opts;
    seq_opts.threads = 1;
    StrategySearchOptions par_opts;
    par_opts.threads = 4;
    const auto a = sweepStrategies(model, train, cluster,
                                   PlanMethod::AdaPipe, seq_opts);
    const auto b = sweepStrategies(model, train, cluster,
                                   PlanMethod::AdaPipe, par_opts);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].par.toString(), b[i].par.toString());
        EXPECT_EQ(a[i].result.ok, b[i].result.ok);
        if (a[i].result.ok) {
            EXPECT_DOUBLE_EQ(a[i].result.plan.timing.total,
                             b[i].result.plan.timing.total);
        }
    }
}

TEST_F(StrategySearchTest, InfeasibleStrategiesReportOom)
{
    // On a tiny device everything should OOM.
    ClusterSpec small = cluster;
    small.device.memCapacity = GiB(1);
    small.device.reservedBytes = 0;
    const auto best =
        bestStrategy(model, train, small, PlanMethod::DappleNon);
    EXPECT_FALSE(best.has_value());
}

} // namespace
} // namespace adapipe
