/**
 * @file
 * Tests for the robustness subsystem: deterministic fault injection
 * in the simulator, degraded-mode replanning invariants and the
 * sensitivity report.
 */

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "robust/fault_spec.h"
#include "robust/replan.h"
#include "robust/replan_io.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace adapipe {
namespace {

std::vector<StageTimes>
uniformTimes(int p, Seconds fwd, Seconds bwd)
{
    return std::vector<StageTimes>(static_cast<std::size_t>(p),
                                   StageTimes{fwd, bwd});
}

FaultSpec
noisySpec(std::uint64_t seed)
{
    FaultSpec spec;
    spec.seed = seed;
    spec.slowdowns.push_back({1, 1.5});
    spec.stalls.probability = 0.3;
    spec.stalls.base = 0.01;
    spec.stalls.maxRetries = 3;
    spec.p2pJitter = 0.2;
    return spec;
}

TEST(FaultSim, FixedSeedIsBitForBitDeterministic)
{
    const Schedule sched = build1F1B(4, 8);
    const auto times = uniformTimes(4, 1.0, 2.0);
    SimOptions opts;
    opts.p2pTime = 0.05;
    opts.faults = noisySpec(7);

    const SimResult a = simulate(sched, times, opts);
    const SimResult b = simulate(sched, times, opts);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].start, b.records[i].start) << i;
        EXPECT_EQ(a.records[i].end, b.records[i].end) << i;
    }
    EXPECT_EQ(a.iterationTime, b.iterationTime);
    EXPECT_EQ(a.stallTime, b.stallTime);
}

TEST(FaultSim, DifferentSeedsChangeTheRealisation)
{
    const Schedule sched = build1F1B(4, 8);
    const auto times = uniformTimes(4, 1.0, 2.0);
    SimOptions a_opts;
    a_opts.p2pTime = 0.05;
    a_opts.faults = noisySpec(7);
    SimOptions b_opts = a_opts;
    b_opts.faults.seed = 8;

    const SimResult a = simulate(sched, times, a_opts);
    const SimResult b = simulate(sched, times, b_opts);
    EXPECT_NE(a.iterationTime, b.iterationTime);
}

TEST(FaultSim, SlowdownScalesEveryOpOnTheDevice)
{
    const Schedule sched = build1F1B(2, 4);
    const auto times = uniformTimes(2, 1.0, 2.0);
    SimOptions opts;
    opts.faults.slowdowns.push_back({0, 2.0});

    const SimResult r = simulate(sched, times, opts);
    ASSERT_TRUE(r.completed);
    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        const PipeOp &op = sched.ops[i];
        const Seconds duration =
            r.records[i].end - r.records[i].start;
        const Seconds base =
            op.kind == OpKind::Forward ? 1.0 : 2.0;
        const double factor = op.device == 0 ? 2.0 : 1.0;
        EXPECT_DOUBLE_EQ(duration, base * factor) << i;
    }
}

TEST(FaultSim, StallsAddReportedDelay)
{
    const Schedule sched = build1F1B(4, 8);
    const auto times = uniformTimes(4, 1.0, 2.0);
    SimOptions clean;
    SimOptions stalling;
    stalling.faults.seed = 3;
    stalling.faults.stalls.probability = 0.5;
    stalling.faults.stalls.base = 0.25;

    const SimResult a = simulate(sched, times, clean);
    const SimResult b = simulate(sched, times, stalling);
    EXPECT_EQ(a.stallTime, 0.0);
    EXPECT_GT(b.stallTime, 0.0);
    EXPECT_GT(b.iterationTime, a.iterationTime);
}

TEST(FaultSim, JitterFactorStaysInRange)
{
    FaultSpec spec;
    spec.seed = 11;
    spec.p2pJitter = 0.2;
    for (std::uint64_t id = 0; id < 1000; ++id) {
        const double f = spec.jitterFactor(id);
        EXPECT_GE(f, 1.0);
        EXPECT_LE(f, 1.2);
    }
}

TEST(FaultSim, DeviceFailureEndsTheIterationGracefully)
{
    const Schedule sched = build1F1B(4, 8);
    const auto times = uniformTimes(4, 1.0, 2.0);
    SimOptions opts;
    opts.faults.failure = {1, 5.0};

    const SimResult r = simulate(sched, times, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.failedDevice, 1);
    // No op on the failed device starts at/after the failure time,
    // and at least one op was left unexecuted.
    std::size_t undone = 0;
    for (std::size_t i = 0; i < sched.ops.size(); ++i) {
        if (!r.records[i].done()) {
            ++undone;
            continue;
        }
        if (sched.ops[i].device == 1) {
            EXPECT_LT(r.records[i].start, 5.0) << i;
        }
    }
    EXPECT_GT(undone, 0u);
}

TEST(FaultSim, FailureAtTimeZeroStopsEverything)
{
    const Schedule sched = build1F1B(2, 4);
    const auto times = uniformTimes(2, 1.0, 2.0);
    SimOptions opts;
    opts.faults.failure = {0, 0.0};

    const SimResult r = simulate(sched, times, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.iterationTime, 0.0);
}

TEST(FaultSim, FailureAfterTheIterationIsInvisible)
{
    const Schedule sched = build1F1B(2, 4);
    const auto times = uniformTimes(2, 1.0, 2.0);
    SimOptions opts;
    opts.faults.failure = {0, 1e9};

    const SimResult r = simulate(sched, times, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.failedDevice, -1);
}

TEST(FaultSim, GreedyScheduleSurvivesDeviceFailure)
{
    // Chimera runs through the greedy scheduler; a failure must end
    // it gracefully instead of tripping the deadlock assert.
    const Schedule sched = buildChimera(4, 4);
    const auto times = uniformTimes(4, 1.0, 2.0);
    SimOptions opts;
    opts.faults.failure = {2, 2.0};

    const SimResult r = simulate(sched, times, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.failedDevice, 2);
}

TEST(FaultSpecJson, RoundTrips)
{
    const FaultSpec spec = noisySpec(99);
    const ParseResult<FaultSpec> back =
        faultSpecFromJson(faultSpecToJson(spec));
    ASSERT_TRUE(back.ok()) << back.error();
    const FaultSpec &b = back.value();
    EXPECT_EQ(b.seed, spec.seed);
    ASSERT_EQ(b.slowdowns.size(), spec.slowdowns.size());
    EXPECT_EQ(b.slowdowns[0].device, spec.slowdowns[0].device);
    EXPECT_EQ(b.slowdowns[0].factor, spec.slowdowns[0].factor);
    EXPECT_EQ(b.stalls.probability, spec.stalls.probability);
    EXPECT_EQ(b.stalls.base, spec.stalls.base);
    EXPECT_EQ(b.stalls.maxRetries, spec.stalls.maxRetries);
    EXPECT_EQ(b.p2pJitter, spec.p2pJitter);
    EXPECT_EQ(b.failure.device, spec.failure.device);
}

TEST(FaultSpecJson, ErrorsNameTheField)
{
    const ParseResult<FaultSpec> r = faultSpecFromJsonString(
        R"({"slowdowns": [{"device": 0, "factor": 0.5}]})");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("fault.slowdowns[0].factor"),
              std::string::npos)
        << r.error();
}

class ReplanTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 4096;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
    }
};

TEST_F(ReplanTest, ShiftsLayersAwayFromTheStraggler)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const PlanResult healthy = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(healthy.ok) << healthy.oomReason;

    DegradedScenario scenario;
    scenario.stragglerStage = 1;
    scenario.stragglerFactor = 2.0;
    const ReplanResult degraded = replanDegraded(pm, scenario);
    ASSERT_TRUE(degraded.ok) << degraded.reason;
    EXPECT_LT(degraded.plan.stages[1].numLayers(),
              healthy.plan.stages[1].numLayers());
}

TEST_F(ReplanTest, HealthyTimesDivideOutTheSlowdown)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    DegradedScenario scenario;
    scenario.stragglerStage = 2;
    scenario.stragglerFactor = 1.75;
    const ReplanResult r = replanDegraded(pm, scenario);
    ASSERT_TRUE(r.ok) << r.reason;
    ASSERT_EQ(r.healthyTimes.size(), r.plan.stages.size());
    for (std::size_t s = 0; s < r.plan.stages.size(); ++s) {
        const double factor = s == 2 ? 1.75 : 1.0;
        EXPECT_NEAR(r.healthyTimes[s].fwd * factor,
                    r.plan.stages[s].timeFwd, 1e-12);
        EXPECT_NEAR(r.healthyTimes[s].bwd * factor,
                    r.plan.stages[s].timeBwd, 1e-12);
    }
}

TEST_F(ReplanTest, RejectsInvalidScenarios)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    DegradedScenario scenario;
    scenario.lostStages = par.pipeline;
    EXPECT_FALSE(replanDegraded(pm, scenario).ok);
    scenario = {};
    scenario.stragglerStage = par.pipeline;
    EXPECT_FALSE(replanDegraded(pm, scenario).ok);
    scenario = {};
    scenario.stragglerStage = 0;
    scenario.stragglerFactor = 0.5;
    EXPECT_FALSE(replanDegraded(pm, scenario).ok);
    scenario = {};
    scenario.memFactor = 0.0;
    EXPECT_FALSE(replanDegraded(pm, scenario).ok);
}

TEST_F(ReplanTest, DegradedPlansSatisfyInvariants)
{
    // Property test: every feasible degraded plan covers all layers
    // contiguously and keeps every stage under the degraded memory
    // cap.
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const int L = pm.numLayers();
    Rng rng(20240805);
    int feasible = 0;
    for (int trial = 0; trial < 24; ++trial) {
        DegradedScenario scenario;
        scenario.lostStages =
            static_cast<int>(rng.uniformInt(0, 1));
        const int surviving = par.pipeline - scenario.lostStages;
        scenario.stragglerStage =
            static_cast<int>(rng.uniformInt(-1, surviving - 1));
        scenario.stragglerFactor = rng.uniform(1.0, 3.0);
        scenario.memFactor = rng.uniform(0.7, 1.0);

        const ReplanResult r = replanDegraded(pm, scenario);
        if (!r.ok)
            continue;
        ++feasible;
        ASSERT_EQ(static_cast<int>(r.plan.stages.size()), surviving);
        EXPECT_EQ(r.plan.stages.front().firstLayer, 0);
        EXPECT_EQ(r.plan.stages.back().lastLayer, L - 1);
        for (std::size_t s = 0; s < r.plan.stages.size(); ++s) {
            const StagePlan &sp = r.plan.stages[s];
            EXPECT_LE(sp.firstLayer, sp.lastLayer);
            if (s > 0) {
                EXPECT_EQ(sp.firstLayer,
                          r.plan.stages[s - 1].lastLayer + 1);
            }
            EXPECT_LE(sp.memPeak, r.degradedCapacity)
                << "trial " << trial << " stage " << s;
        }
    }
    // The scenario distribution is gentle enough that most replans
    // must succeed; a sweep that never replans tests nothing.
    EXPECT_GE(feasible, 12);
}

TEST_F(ReplanTest, SensitivityReportShowsReplanWinning)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const PlanResult healthy = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(healthy.ok) << healthy.oomReason;

    const RobustnessReport report = buildSensitivityReport(
        pm, healthy.plan, 1, {1.5, 2.0}, 42);
    ASSERT_EQ(report.rows.size(), 2u);
    for (const SensitivityRow &row : report.rows) {
        ASSERT_TRUE(row.replanOk);
        EXPECT_GT(row.originalTime, report.healthyTime);
        EXPECT_LT(row.replannedTime, row.originalTime)
            << "severity " << row.severity;
        EXPECT_GT(row.speedup, 1.0);
    }
}

TEST(ReplanGpt3, ReplannedBeatsOriginalUnderStraggler)
{
    // The acceptance fixture: GPT-3 175B on cluster A, one device
    // 1.5x slower — replanning must recover part of the loss.
    TrainConfig train;
    train.seqLen = 8192;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        gpt3_175b(), train, par, clusterA(8));
    const PlanResult healthy = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(healthy.ok) << healthy.oomReason;

    const RobustnessReport report = buildSensitivityReport(
        pm, healthy.plan, 1, {1.5}, 42);
    ASSERT_EQ(report.rows.size(), 1u);
    ASSERT_TRUE(report.rows[0].replanOk);
    EXPECT_LT(report.rows[0].replannedTime,
              report.rows[0].originalTime);
}

TEST_F(ReplanTest, DegradedPlanRoundTripsWithProvenance)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const PlanResult healthy = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(healthy.ok) << healthy.oomReason;
    DegradedScenario scenario;
    scenario.lostStages = 1;
    const ReplanResult degraded = replanDegraded(pm, scenario);
    ASSERT_TRUE(degraded.ok) << degraded.reason;

    DegradedPlanDoc doc;
    doc.plan = degraded.plan;
    doc.scenario = scenario;
    doc.originalFingerprint = planFingerprint(healthy.plan);
    doc.degradedCapacity = degraded.degradedCapacity;

    const std::string text = degradedPlanToJsonString(doc, 2);
    const auto back = tryDegradedPlanFromJsonString(text);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back.value().scenario.lostStages, 1);
    EXPECT_EQ(back.value().scenario.stragglerStage, -1);
    EXPECT_EQ(back.value().originalFingerprint,
              doc.originalFingerprint);
    EXPECT_EQ(back.value().degradedCapacity,
              degraded.degradedCapacity);
    // The embedded plan survives byte-for-byte: re-serializing the
    // parsed document reproduces the original text.
    EXPECT_EQ(degradedPlanToJsonString(back.value(), 2), text);
    EXPECT_EQ(back.value().plan.stages.size(),
              degraded.plan.stages.size());

    // The fingerprint is stable for equal plans and moves when the
    // plan changes.
    EXPECT_EQ(planFingerprint(healthy.plan),
              planFingerprint(healthy.plan));
    EXPECT_NE(planFingerprint(healthy.plan),
              planFingerprint(degraded.plan));
    EXPECT_EQ(doc.originalFingerprint.size(), 16u);
}

TEST_F(ReplanTest, DegradedPlanErrorsNameTheField)
{
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    DegradedScenario scenario;
    scenario.lostStages = 1;
    const ReplanResult degraded = replanDegraded(pm, scenario);
    ASSERT_TRUE(degraded.ok) << degraded.reason;
    DegradedPlanDoc doc;
    doc.plan = degraded.plan;
    doc.scenario = scenario;
    doc.originalFingerprint = "0123456789abcdef";
    const std::string base = degradedPlanToJsonString(doc, 2);

    struct Case
    {
        const char *needle;
        const char *replacement;
        const char *expected;
    };
    const Case cases[] = {
        {"\"lost_stages\": 1", "\"lost_stages\": -1",
         "degraded_plan.scenario.lost_stages"},
        {"\"straggler_factor\": 1", "\"straggler_factor\": 0.5",
         "degraded_plan.scenario.straggler_factor"},
        {"\"mem_factor\": 1", "\"mem_factor\": 0",
         "degraded_plan.scenario.mem_factor"},
        {"\"original_fingerprint\": \"0123456789abcdef\"",
         "\"original_fingerprint\": \"xyz\"",
         "degraded_plan.original_fingerprint"},
        {"\"degraded_capacity\":", "\"degraded_capacity_typo\":",
         "degraded_plan"},
    };
    for (const Case &c : cases) {
        std::string text = base;
        const std::size_t pos = text.find(c.needle);
        ASSERT_NE(pos, std::string::npos) << c.needle;
        text.replace(pos, std::string(c.needle).size(),
                     c.replacement);
        const auto r = tryDegradedPlanFromJsonString(text);
        ASSERT_FALSE(r.ok()) << c.expected;
        EXPECT_NE(r.error().find(c.expected), std::string::npos)
            << "error was: " << r.error();
    }

    // A broken embedded plan is reported under the plan's own
    // field path, prefixed with the document's.
    std::string text = base;
    const std::size_t pos = text.find("\"micro_batches\":");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("\"micro_batches\":").size(),
                 "\"micro_batches_typo\":");
    const auto r = tryDegradedPlanFromJsonString(text);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("degraded_plan.plan"),
              std::string::npos)
        << r.error();
}

TEST(ReplanReport, JsonCarriesEveryRow)
{
    RobustnessReport report;
    report.model = "test";
    report.stragglerStage = 3;
    report.seed = 17;
    report.healthyTime = 1.0;
    report.rows.push_back({1.5, 2.0, 1.5, true, 2.0 / 1.5});
    const JsonValue json = reportToJson(report);
    const ParseResult<JsonValue> back =
        JsonValue::tryParse(json.dump(2));
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back.value().at("straggler_stage").asInteger(), 3);
    EXPECT_EQ(back.value().at("rows").elements().size(), 1u);
}

} // namespace
} // namespace adapipe
