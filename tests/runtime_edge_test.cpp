/**
 * @file
 * Edge-case regressions for planning and plan->runtime mapping:
 * more pipeline stages than attention blocks (p = num_blocks + 1).
 *
 * The adaptive DP can express that shape — some stages own no
 * blocks and execute as pass-throughs — while the even baseline
 * partition cannot, and used to abort the process from an assert
 * deep inside evenPartition() instead of returning a PlanResult
 * failure.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autograd/trainer.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"

namespace adapipe {
namespace {

/** Two attention blocks, so p = 3 is one stage more than blocks. */
TinyLmConfig
twoBlockConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 2;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

PlanResult
planTinyLm(const TinyLmConfig &cfg, int p, int n, PlanMethod method)
{
    TrainConfig train;
    train.seqLen = 12;
    train.microBatch = 1;
    train.globalBatch = n;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = p;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        tinyLmModelConfig(cfg), train, par, clusterA(1));
    return makePlan(pm, method, {});
}

TEST(RuntimeEdge, EvenPartitionRejectsMoreStagesThanBlocks)
{
    const TinyLmConfig cfg = twoBlockConfig();
    const int p = cfg.blocks + 1;
    for (const PlanMethod method :
         {PlanMethod::EvenPartition, PlanMethod::DappleFull,
          PlanMethod::DappleNon, PlanMethod::DappleSelective}) {
        const PlanResult result = planTinyLm(cfg, p, 4, method);
        EXPECT_FALSE(result.ok);
        EXPECT_NE(result.oomReason.find("even partition"),
                  std::string::npos)
            << result.oomReason;
    }
}

TEST(RuntimeEdge, AdaPipeBlocklessStageMapsAndNotes)
{
    const TinyLmConfig cfg = twoBlockConfig();
    const int p = cfg.blocks + 1;
    const PlanResult result =
        planTinyLm(cfg, p, 4, PlanMethod::AdaPipe);
    ASSERT_TRUE(result.ok) << result.oomReason;
    ASSERT_EQ(result.plan.stages.size(),
              static_cast<std::size_t>(p));

    const StageMapping mapping =
        stageSpecsFromPlan(result.plan, cfg);
    ASSERT_EQ(mapping.stages.size(), static_cast<std::size_t>(p));

    // Every block is covered exactly once, and at least one stage
    // is block-less (p > blocks forces it).
    int covered = 0;
    int blockless = 0;
    for (const StageSpec &spec : mapping.stages) {
        if (spec.numBlocks() == 0) {
            ++blockless;
            continue;
        }
        EXPECT_EQ(spec.firstBlock, covered);
        covered = spec.lastBlock + 1;
    }
    EXPECT_EQ(covered, cfg.blocks);
    EXPECT_GE(blockless, 1);

    // The mapping explains the idle stage instead of leaving a
    // silent firstBlock > lastBlock pair.
    bool noted = false;
    for (const std::string &note : mapping.notes)
        if (note.find("pass-through") != std::string::npos)
            noted = true;
    EXPECT_TRUE(noted);
}

TEST(RuntimeEdge, BlocklessStageRunsBitIdenticalToReference)
{
    const TinyLmConfig cfg = twoBlockConfig();
    const PlanResult result =
        planTinyLm(cfg, cfg.blocks + 1, 4, PlanMethod::AdaPipe);
    ASSERT_TRUE(result.ok) << result.oomReason;
    const StageMapping mapping =
        stageSpecsFromPlan(result.plan, cfg);

    RuntimeOptions opts;
    opts.steps = 2;
    opts.seqLen = 12;
    opts.microBatches = 4;
    opts.lr = 4e-3f;
    opts.dataSeed = 7;

    TinyLM model(cfg);
    const RuntimeResult run =
        runPipeline(model, mapping.stages, opts);

    TinyLM ref_model(cfg);
    TrainOptions ref;
    ref.steps = opts.steps;
    ref.seqLen = opts.seqLen;
    ref.lr = opts.lr;
    ref.useAdam = opts.useAdam;
    ref.dataSeed = opts.dataSeed;
    ref.microBatches = opts.microBatches;
    for (const StageSpec &spec : mapping.stages)
        ref.recompute.insert(ref.recompute.end(),
                             spec.recompute.begin(),
                             spec.recompute.end());
    EXPECT_EQ(run.losses, trainTinyLM(ref_model, ref).losses);
}

} // namespace
} // namespace adapipe
