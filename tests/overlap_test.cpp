/**
 * @file
 * Tests for overlapped checkpoint replay: the bit-exactness sweep
 * (overlap on/off x recompute mode x stage count x virtual stages x
 * intra-stage threads must all train to identical losses), the
 * drain-all firing-order determinism hook, the disjoint
 * backward/replay time accounting, the watchdog wait-accounting
 * regression, and the bubble-discounted planner producing a
 * different knapsack solution than the lazy plan on a golden
 * workload.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "autograd/trainer.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "sim/interleaved_planner.h"

namespace adapipe {
namespace {

TinyLmConfig
smallConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 6;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

RuntimeOptions
smallOpts()
{
    RuntimeOptions opts;
    opts.steps = 2;
    opts.seqLen = 12;
    opts.microBatches = 4;
    opts.lr = 4e-3f;
    opts.dataSeed = 7;
    return opts;
}

/** Single-threaded reference over the identical data stream. */
std::vector<double>
referenceLosses(const TinyLmConfig &cfg, const RuntimeOptions &opts,
                const std::vector<StageSpec> &specs)
{
    TinyLM model(cfg);
    TrainOptions ref;
    ref.steps = opts.steps;
    ref.seqLen = opts.seqLen;
    ref.lr = opts.lr;
    ref.useAdam = opts.useAdam;
    ref.dataSeed = opts.dataSeed;
    ref.microBatches = opts.microBatches;
    for (const StageSpec &spec : specs)
        ref.recompute.insert(ref.recompute.end(),
                             spec.recompute.begin(),
                             spec.recompute.end());
    return trainTinyLM(model, ref).losses;
}

// Eager replay recomputes from the same saved boundary input with the
// same parameters as lazy replay, so the loss stream must be
// bit-identical at every (overlap, recompute, p, v, threads) corner —
// the paper's Fig. 10 invariant extended to the overlap knob.
TEST(OverlapBitExactness, SweepMatchesReferenceAtEveryCorner)
{
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions base = smallOpts();
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::AttentionOnly,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        const std::vector<double> ref = referenceLosses(
            cfg, base, evenStageSpecs(cfg.blocks, 1, mode));
        ASSERT_EQ(ref.size(), static_cast<std::size_t>(base.steps));
        for (const int p : {1, 2, 4}) {
            for (const int v : {1, 2}) {
                if (v * p > cfg.blocks)
                    continue; // a chunk per block at most
                if (v > 1 && base.microBatches % p != 0)
                    continue; // Megatron's interleaving constraint
                const auto specs =
                    evenStageSpecs(cfg.blocks, v * p, mode);
                for (const int threads : {1, 4}) {
                    for (const bool overlap : {false, true}) {
                        RuntimeOptions opts = base;
                        opts.virtualStages = v;
                        opts.intraStageThreads = threads;
                        opts.overlapReplay = overlap;
                        TinyLM model(cfg);
                        const RuntimeResult run =
                            runPipeline(model, specs, opts);
                        ASSERT_TRUE(run.ok) << run.error;
                        EXPECT_EQ(run.losses, ref)
                            << "mode=" << static_cast<int>(mode)
                            << " p=" << p << " v=" << v
                            << " threads=" << threads
                            << " overlap=" << overlap;
                    }
                }
            }
        }
    }
}

TEST(OverlapDeterminism, DrainAllFiringOrderIsReproducible)
{
    // With overlapDrainAll every channel wait warms *all* pending
    // replays, so the firing log is a pure function of the schedule:
    // two identical runs must log identical (pos, microBatch, unit)
    // sequences per worker.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.virtualStages = 2;
    opts.overlapReplay = true;
    opts.overlapDrainAll = true;
    const int p = 2;
    const auto specs = evenStageSpecs(cfg.blocks, opts.virtualStages * p,
                                      BlockRecompute::Full);

    RuntimeResult runs[2];
    for (RuntimeResult &run : runs) {
        TinyLM model(cfg);
        run = runPipeline(model, specs, opts);
        ASSERT_TRUE(run.ok) << run.error;
        ASSERT_EQ(run.stages.size(),
                  static_cast<std::size_t>(opts.virtualStages * p));
    }
    EXPECT_EQ(runs[0].losses, runs[1].losses);

    std::int64_t total_firings = 0;
    for (std::size_t g = 0; g < runs[0].stages.size(); ++g) {
        EXPECT_EQ(runs[0].stages[g].overlapFirings,
                  runs[1].stages[g].overlapFirings)
            << "chain position " << g;
        total_firings += static_cast<std::int64_t>(
            runs[0].stages[g].overlapFirings.size());
    }
    // Full recompute on a multi-stage pipeline has both pending
    // replays and channel waits, so some replay must have been warmed
    // early.
    EXPECT_GT(total_firings, 0);
}

TEST(OverlapAccounting, BackwardAndReplayAreDisjoint)
{
    // Regression for the bwd_us double-count: backward compute and
    // replay must be reported disjointly, and the hidden share can
    // never exceed the total replay time.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.overlapReplay = true;
    const auto specs =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::Full);
    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run = runPipeline(model, specs, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_EQ(run.stages.size(), 2u);

    EXPECT_EQ(metrics.gauge("runtime.overlap.enabled"), 1.0);
    for (std::size_t s = 0; s < run.stages.size(); ++s) {
        const StageMetrics &sm = run.stages[s];
        EXPECT_GT(sm.replayOps, 0) << "stage " << s;
        EXPECT_GE(sm.replayOps, sm.replayHiddenOps) << "stage " << s;
        EXPECT_LE(sm.replayHiddenSeconds, sm.replaySeconds + 1e-9)
            << "stage " << s;
        // The decomposition identities the report columns rely on.
        EXPECT_NEAR(sm.replayCriticalSeconds(),
                    std::max(0.0, sm.replaySeconds -
                                      sm.replayHiddenSeconds),
                    1e-12);
        EXPECT_LE(sm.bwdComputeSeconds(), sm.bwdSeconds + 1e-12);
        if (sm.bwdSeconds > sm.replayCriticalSeconds()) {
            EXPECT_NEAR(sm.bwdComputeSeconds() +
                            sm.replayCriticalSeconds(),
                        sm.bwdSeconds, 1e-9)
                << "stage " << s;
        }

        const std::string prefix =
            "runtime.stage." + std::to_string(s) + ".";
        EXPECT_NEAR(metrics.gauge(prefix + "bwd_compute_us"),
                    sm.bwdComputeSeconds() * 1e6, 1.0)
            << prefix;
        EXPECT_NEAR(metrics.gauge(prefix + "replay_hidden_us"),
                    sm.replayHiddenSeconds * 1e6, 1.0)
            << prefix;
        EXPECT_NEAR(metrics.gauge(prefix + "replay_critical_us"),
                    sm.replayCriticalSeconds() * 1e6, 1.0)
            << prefix;
        EXPECT_LE(metrics.gauge(prefix + "bwd_compute_us"),
                  metrics.gauge(prefix + "bwd_us") + 1.0)
            << prefix;
    }
}

TEST(OverlapAccounting, LazyRunsReportNoHiddenReplay)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.overlapReplay = false;
    const auto specs =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::Full);
    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run = runPipeline(model, specs, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(metrics.gauge("runtime.overlap.enabled"), 0.0);
    EXPECT_EQ(metrics.counter("runtime.overlap.warms"), 0);
    for (const StageMetrics &sm : run.stages) {
        EXPECT_EQ(sm.replayHiddenOps, 0);
        EXPECT_EQ(sm.replayHiddenSeconds, 0.0);
        EXPECT_TRUE(sm.overlapFirings.empty());
    }
}

TEST(OverlapAccounting, WatchdogDoesNotSkewWaitTimes)
{
    // Regression for the heartbeat-loop wait drift: with the watchdog
    // on, recv/send waits run as repeated short timed waits, and the
    // reported waited time must still cover the whole wall-clock
    // window, not just the final beat iteration. Injected send delays
    // make the expected wait large and deterministic enough to
    // compare the two modes.
    const TinyLmConfig cfg = smallConfig();
    RuntimeFaultSpec faults;
    faults.sendDelayUs = 2000;
    faults.sendDelayJitter = 0;

    double recv_wait[2] = {0, 0};
    std::vector<double> losses[2];
    for (const bool watchdog : {false, true}) {
        RuntimeOptions opts = smallOpts();
        opts.faults = &faults;
        opts.watchdog.enabled = watchdog;
        opts.watchdog.stallTimeoutUs = 60e6; // never trips here
        const auto specs =
            evenStageSpecs(cfg.blocks, 2, BlockRecompute::None);
        TinyLM model(cfg);
        const RuntimeResult run = runPipeline(model, specs, opts);
        ASSERT_TRUE(run.ok) << run.error;
        for (const StageMetrics &sm : run.stages)
            recv_wait[watchdog ? 1 : 0] += sm.recvWaitSeconds;
        losses[watchdog ? 1 : 0] = run.losses;
    }
    EXPECT_EQ(losses[0], losses[1]);

    // steps * microBatches delayed sends per direction at 2 ms each:
    // both modes must see a large fraction of that as recv wait...
    EXPECT_GT(recv_wait[0], 5e-3);
    EXPECT_GT(recv_wait[1], 5e-3);
    // ...and agree with each other up to scheduling noise. Before the
    // fix the watchdog run under-reported by roughly the heartbeat
    // remainder of every wait window.
    const double hi = std::max(recv_wait[0], recv_wait[1]);
    const double lo = std::min(recv_wait[0], recv_wait[1]);
    EXPECT_LT(hi - lo, 0.6 * hi + 0.01)
        << "watchdog off: " << recv_wait[0]
        << " s, on: " << recv_wait[1] << " s";
}

TEST(OverlapPlan, MappingCarriesTheOverlapFlag)
{
    const TinyLmConfig cfg = smallConfig();
    TrainConfig train;
    train.seqLen = 16;
    train.globalBatch = 4;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = 2;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        tinyLmModelConfig(cfg), train, par, clusterA(1));
    const PlanResult result =
        makeOverlapPlan(pm, PlanMethod::AdaPipe, 1);
    ASSERT_TRUE(result.ok) << result.oomReason;
    EXPECT_TRUE(result.plan.overlap);
    const StageMapping mapping = stageSpecsFromPlan(result.plan, cfg);
    EXPECT_TRUE(mapping.overlap);
}

TEST(OverlapPlan, DiscountedKnapsackDiffersOnGoldenWorkload)
{
    // The bubble-discounted objective must actually change the saved
    // set on a paper workload: replay that hides inside the 1F1B
    // bubble stops paying for activation memory.
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(gpt3_175b(), train, par, clusterA(8));

    const PlanResult lazy =
        makeInterleavedPlan(pm, PlanMethod::AdaPipe, 1);
    ASSERT_TRUE(lazy.ok) << lazy.oomReason;
    const PlanResult overlapped =
        makeOverlapPlan(pm, PlanMethod::AdaPipe, 1);
    ASSERT_TRUE(overlapped.ok) << overlapped.oomReason;

    EXPECT_FALSE(lazy.plan.overlap);
    EXPECT_TRUE(overlapped.plan.overlap);
    ASSERT_EQ(lazy.plan.stages.size(), overlapped.plan.stages.size());

    Seconds hidden_total = 0;
    bool saved_set_differs = false;
    for (std::size_t s = 0; s < overlapped.plan.stages.size(); ++s) {
        const StagePlan &ov = overlapped.plan.stages[s];
        hidden_total += ov.timeReplayHidden;
        EXPECT_GE(ov.overlapBubble, 0.0);
        EXPECT_GE(ov.timeReplayHidden, 0.0);
        EXPECT_GE(ov.timeReplayCritical, 0.0);
        const StagePlan &lz = lazy.plan.stages[s];
        if (ov.savedMask != lz.savedMask ||
            ov.savedUnits != lz.savedUnits)
            saved_set_differs = true;
    }
    EXPECT_GT(hidden_total, 0.0);
    EXPECT_TRUE(saved_set_differs)
        << "overlap plan saved the exact same units as the lazy plan";
    EXPECT_NE(planToJsonString(lazy.plan, 0),
              planToJsonString(overlapped.plan, 0));
}

} // namespace
} // namespace adapipe
