/**
 * @file
 * Unit tests for the memory module: static memory, activation
 * accounting, buffer bounds and the (p - s) in-flight weighting.
 */

#include <gtest/gtest.h>

#include "memory/memory_model.h"
#include "model/model_config.h"
#include "model/units.h"
#include "util/units.h"

namespace adapipe {
namespace {

class MemoryModelTest : public ::testing::Test
{
  protected:
    ModelConfig model = tinyTestModel();
    TrainConfig train;
    ParallelConfig par;

    void
    SetUp() override
    {
        train.seqLen = 128;
        par.tensor = 2;
        par.pipeline = 2;
        par.data = 2;
    }
};

TEST_F(MemoryModelTest, StaticMemoryComponents)
{
    MemoryModel mm(model, train, par);
    const std::uint64_t n = 1'000'000;
    const StaticMemory mem = mm.staticMemory(n);
    // fp16 params sharded by t.
    EXPECT_EQ(mem.params, n * 2 / 2);
    // fp32 gradient accumulation, sharded by t only.
    EXPECT_EQ(mem.grads, n * 4 / 2);
    // Adam states (8 B) + fp32 master (4 B), sharded by t*d (ZeRO-1).
    EXPECT_EQ(mem.optimizer, n * 12 / (2 * 2));
    EXPECT_EQ(mem.total(), mem.params + mem.grads + mem.optimizer);
}

TEST_F(MemoryModelTest, OptimizerConfigChangesFootprint)
{
    OptimizerConfig lean;
    lean.fp32MasterParams = false;
    lean.fp32GradAccum = false;
    MemoryModel mm_lean(model, train, par, lean);
    MemoryModel mm_fat(model, train, par);
    const std::uint64_t n = 1'000'000;
    EXPECT_LT(mm_lean.staticMemory(n).total(),
              mm_fat.staticMemory(n).total());
    EXPECT_EQ(mm_lean.staticMemory(n).grads, n * 2 / 2);
}

TEST_F(MemoryModelTest, ZeroOneShardsOptimizerByData)
{
    MemoryModel mm(model, train, par);
    ParallelConfig par_d4 = par;
    par_d4.data = 4;
    MemoryModel mm4(model, train, par_d4);
    const std::uint64_t n = 1'000'000;
    EXPECT_EQ(mm.staticMemory(n).optimizer,
              2 * mm4.staticMemory(n).optimizer);
    // Params and grads are NOT sharded by d.
    EXPECT_EQ(mm.staticMemory(n).params, mm4.staticMemory(n).params);
}

TEST_F(MemoryModelTest, ZeroStagesShardProgressively)
{
    const std::uint64_t n = 1'000'000;
    std::vector<StaticMemory> by_stage;
    for (int stage = 0; stage <= 3; ++stage) {
        OptimizerConfig opt;
        opt.zeroStage = stage;
        by_stage.push_back(
            MemoryModel(model, train, par, opt).staticMemory(n));
    }
    // Stage 1 shards optimizer states only.
    EXPECT_EQ(by_stage[0].optimizer, 2 * by_stage[1].optimizer);
    EXPECT_EQ(by_stage[0].params, by_stage[1].params);
    EXPECT_EQ(by_stage[0].grads, by_stage[1].grads);
    // Stage 2 additionally shards gradients.
    EXPECT_EQ(by_stage[1].grads, 2 * by_stage[2].grads);
    EXPECT_EQ(by_stage[1].params, by_stage[2].params);
    // Stage 3 additionally shards parameters.
    EXPECT_EQ(by_stage[2].params, 2 * by_stage[3].params);
    // Totals strictly decrease.
    for (int stage = 1; stage <= 3; ++stage)
        EXPECT_LT(by_stage[stage].total(), by_stage[stage - 1].total());
}

TEST_F(MemoryModelTest, RejectsInvalidZeroStage)
{
    OptimizerConfig opt;
    opt.zeroStage = 4;
    MemoryModel mm(model, train, par, opt);
    EXPECT_DEATH(mm.staticMemory(1000), "invalid ZeRO stage");
}

TEST_F(MemoryModelTest, StageInputSeqParallelAware)
{
    MemoryModel mm(model, train, par);
    const Bytes seq_par = mm.stageInputBytes();
    ParallelConfig no_sp = par;
    no_sp.sequenceParallel = false;
    MemoryModel mm_nosp(model, train, no_sp);
    EXPECT_EQ(mm_nosp.stageInputBytes(), seq_par * par.tensor);
}

TEST_F(MemoryModelTest, FullRecomputeSavesOneTensorPerBlock)
{
    const auto layers = buildLayerSequence(model, train, par);
    MemoryModel mm(model, train, par);
    // A pure block range [1, 4] = 2 blocks -> 2 stage-input-sized
    // checkpoints.
    const Bytes full = mm.fullRecomputeSavedPerMb(layers, 1, 4);
    EXPECT_EQ(full, 2 * mm.stageInputBytes());
}

TEST_F(MemoryModelTest, NoRecomputeSavesEverything)
{
    const auto layers = buildLayerSequence(model, train, par);
    MemoryModel mm(model, train, par);
    Bytes expected = 0;
    for (int l = 1; l <= 4; ++l)
        expected += layers[l].memSavedAll();
    EXPECT_EQ(mm.noRecomputeSavedPerMb(layers, 1, 4), expected);
    EXPECT_GT(mm.noRecomputeSavedPerMb(layers, 1, 4),
              mm.fullRecomputeSavedPerMb(layers, 1, 4));
}

TEST_F(MemoryModelTest, BufferIsLargestBlockLayer)
{
    const auto layers = buildLayerSequence(model, train, par);
    MemoryModel mm(model, train, par);
    Bytes largest = 0;
    for (int l = 1; l <= 4; ++l)
        largest = std::max(largest, layers[l].memSavedAll());
    EXPECT_EQ(mm.recomputeBufferBytes(layers, 1, 4), largest);
    // Embedding-only range has no recomputable layer -> no buffer.
    EXPECT_EQ(mm.recomputeBufferBytes(layers, 0, 0), 0u);
}

TEST_F(MemoryModelTest, InflightMicroBatches)
{
    // 1F1B: stage s keeps p - s micro-batches, capped by n.
    EXPECT_EQ(MemoryModel::inflightMicroBatches(0, 8, 64), 8);
    EXPECT_EQ(MemoryModel::inflightMicroBatches(7, 8, 64), 1);
    EXPECT_EQ(MemoryModel::inflightMicroBatches(0, 8, 4), 4);
}

TEST_F(MemoryModelTest, EmbeddingAndHeadCountedInFullRecompute)
{
    const auto layers = buildLayerSequence(model, train, par);
    MemoryModel mm(model, train, par);
    const int last = static_cast<int>(layers.size()) - 1;
    // Ranges containing embedding/head include their saved tensors.
    const Bytes with_embed = mm.fullRecomputeSavedPerMb(layers, 0, 2);
    const Bytes without = mm.fullRecomputeSavedPerMb(layers, 1, 2);
    EXPECT_EQ(with_embed - without, layers[0].memSavedAll());
    // [last-2, last] = one Attention + FeedForward block plus the
    // head: one block checkpoint plus the head's saved tensors.
    const Bytes with_head =
        mm.fullRecomputeSavedPerMb(layers, last - 2, last);
    EXPECT_EQ(with_head,
              mm.stageInputBytes() + layers[last].memSavedAll());
}

/**
 * Property sweep: the Fig. 1 imbalance. Memory for saved
 * intermediates scales with (p - s) and with the sequence length.
 */
class ImbalanceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ImbalanceProperty, EarlierStagesNeedMoreActivationMemory)
{
    const auto [p, seq] = GetParam();
    ModelConfig model = tinyTestModel();
    TrainConfig train;
    train.seqLen = seq;
    ParallelConfig par;
    par.tensor = 2;
    par.pipeline = p;
    const auto layers = buildLayerSequence(model, train, par);
    MemoryModel mm(model, train, par);
    const Bytes per_mb = mm.noRecomputeSavedPerMb(
        layers, 0, static_cast<int>(layers.size()) - 1);
    Bytes prev = 0;
    for (int s = p - 1; s >= 0; --s) {
        const Bytes total =
            static_cast<Bytes>(
                MemoryModel::inflightMicroBatches(s, p, 64)) *
            per_mb;
        EXPECT_GT(total, prev) << "stage " << s;
        prev = total;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PipelineAndSeq, ImbalanceProperty,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values(64, 128, 256)));

} // namespace
} // namespace adapipe
