/**
 * @file
 * Gradient checks for the extended op set (SiLU, RMSNorm, column
 * slice/concat) and the Llama-style model variants (multi-head
 * attention, SwiGLU, RMSNorm blocks).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/module.h"
#include "autograd/ops.h"
#include "autograd/optim.h"
#include "autograd/trainer.h"
#include "util/rng.h"

namespace adapipe {
namespace {

template <typename F>
Tensor
numericalGrad(F f, Variable &x, float eps = 1e-3f)
{
    Tensor grad(x.value().shape());
    for (std::int64_t i = 0; i < x.value().numel(); ++i) {
        const float orig = x.value()[i];
        x.mutableValue()[i] = orig + eps;
        const float hi = f();
        x.mutableValue()[i] = orig - eps;
        const float lo = f();
        x.mutableValue()[i] = orig;
        grad[i] = (hi - lo) / (2 * eps);
    }
    return grad;
}

void
expectGradNear(const Tensor &analytic, const Tensor &numeric,
               float tol = 2e-2f)
{
    ASSERT_EQ(analytic.numel(), numeric.numel());
    for (std::int64_t i = 0; i < analytic.numel(); ++i)
        EXPECT_NEAR(analytic[i], numeric[i], tol) << "element " << i;
}

TEST(AutogradOps, SiluForwardValues)
{
    Variable x(Tensor::full({3}, 0.0f), false);
    EXPECT_FLOAT_EQ(ops::silu(x).value()[0], 0.0f);
    Variable y(Tensor::full({1}, 10.0f), false);
    EXPECT_NEAR(ops::silu(y).value()[0], 10.0f, 1e-3f);
}

TEST(AutogradOps, SiluGradient)
{
    Rng rng(11);
    Variable x(Tensor::randn({2, 6}, rng), true);
    auto loss = [&]() {
        NoGradGuard guard;
        Variable out = ops::silu(x);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i];
        return sum;
    };
    x.zeroGrad();
    ops::silu(x).backward();
    expectGradNear(x.grad(), numericalGrad(loss, x));
}

TEST(AutogradOps, RmsNormGradient)
{
    Rng rng(12);
    Variable x(Tensor::randn({3, 5}, rng), true);
    Variable gamma(Tensor::full({5}, 1.3f), true);
    auto loss = [&]() {
        NoGradGuard guard;
        Variable out = ops::rmsNorm(x, gamma);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i] * (i % 2 == 0 ? 1.0f : -0.5f);
        return sum;
    };
    x.zeroGrad();
    gamma.zeroGrad();
    Variable out = ops::rmsNorm(x, gamma);
    Tensor weights(out.value().shape());
    for (std::int64_t i = 0; i < weights.numel(); ++i)
        weights[i] = i % 2 == 0 ? 1.0f : -0.5f;
    ops::mul(out, Variable(std::move(weights), false)).backward();
    expectGradNear(x.grad(), numericalGrad(loss, x));
    expectGradNear(gamma.grad(), numericalGrad(loss, gamma));
}

TEST(AutogradOps, RmsNormRowsHaveUnitRms)
{
    Rng rng(13);
    Variable x(Tensor::randn({4, 8}, rng, 2.0f), false);
    Variable gamma(Tensor::full({8}, 1.0f), false);
    const Variable out = ops::rmsNorm(x, gamma);
    for (int i = 0; i < 4; ++i) {
        float sq = 0;
        for (int j = 0; j < 8; ++j)
            sq += out.value().at(i, j) * out.value().at(i, j);
        EXPECT_NEAR(std::sqrt(sq / 8), 1.0f, 1e-3f);
    }
}

TEST(AutogradOps, SliceConcatRoundTrip)
{
    Rng rng(14);
    Variable x(Tensor::randn({3, 6}, rng), true);
    Variable a = ops::sliceCols(x, 0, 2);
    Variable b = ops::sliceCols(x, 2, 4);
    Variable back = ops::concatCols({a, b});
    ASSERT_TRUE(back.value().sameShape(x.value()));
    for (std::int64_t i = 0; i < x.value().numel(); ++i)
        EXPECT_EQ(back.value()[i], x.value()[i]);

    x.zeroGrad();
    back.backward();
    // Identity mapping: gradient of ones everywhere.
    for (std::int64_t i = 0; i < x.grad().numel(); ++i)
        EXPECT_FLOAT_EQ(x.grad()[i], 1.0f);
}

TEST(AutogradOps, SliceGradientRoutesToColumns)
{
    Variable x(Tensor::full({2, 4}, 1.0f), true);
    x.zeroGrad();
    ops::sliceCols(x, 1, 2).backward();
    for (int i = 0; i < 2; ++i) {
        EXPECT_FLOAT_EQ(x.grad().at(i, 0), 0.0f);
        EXPECT_FLOAT_EQ(x.grad().at(i, 1), 1.0f);
        EXPECT_FLOAT_EQ(x.grad().at(i, 2), 1.0f);
        EXPECT_FLOAT_EQ(x.grad().at(i, 3), 0.0f);
    }
}

TEST(AutogradOps, SliceRejectsOutOfRange)
{
    Variable x(Tensor::full({2, 4}, 1.0f), false);
    EXPECT_DEATH(ops::sliceCols(x, 3, 2), "bad column slice");
}

TEST(LlamaStyle, MultiHeadAttentionGradCheck)
{
    Rng rng(15);
    CausalSelfAttention attn(8, 2, rng);
    Variable x(Tensor::randn({4, 8}, rng), true);
    auto loss = [&]() {
        NoGradGuard guard;
        Variable out = attn.forward(x);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i];
        return sum;
    };
    x.zeroGrad();
    for (auto &p : attn.params())
        p.zeroGrad();
    attn.forward(x).backward();
    expectGradNear(x.grad(), numericalGrad(loss, x), 3e-2f);
}

TEST(LlamaStyle, GatedFfnGradCheck)
{
    Rng rng(16);
    FeedForwardModule ffn(6, 12, /*gated=*/true, rng);
    Variable x(Tensor::randn({3, 6}, rng), true);
    auto loss = [&]() {
        NoGradGuard guard;
        Variable out = ffn.forward(x);
        float sum = 0;
        for (std::int64_t i = 0; i < out.value().numel(); ++i)
            sum += out.value()[i];
        return sum;
    };
    x.zeroGrad();
    for (auto &p : ffn.params())
        p.zeroGrad();
    ffn.forward(x).backward();
    expectGradNear(x.grad(), numericalGrad(loss, x), 3e-2f);
    EXPECT_EQ(ffn.params().size(), 6u); // gate/up/down weight+bias
}

TEST(LlamaStyle, TinyLlamaLearns)
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 2;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.numHeads = 4;
    cfg.gatedFfn = true;
    cfg.rmsNorm = true;
    TinyLM model(cfg);

    TrainOptions opts;
    opts.steps = 120;
    opts.seqLen = 24;
    opts.lr = 5e-3f;
    const TrainStats stats = trainTinyLM(model, opts);
    double tail = 0;
    for (int i = 0; i < 10; ++i)
        tail += stats.losses[stats.losses.size() - 1 - i];
    tail /= 10;
    EXPECT_LT(tail, stats.losses.front() * 0.5);
}

TEST(LlamaStyle, CheckpointBitExactOnLlamaBlocks)
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 16;
    cfg.blocks = 2;
    cfg.ffnHidden = 32;
    cfg.maxSeq = 32;
    cfg.numHeads = 2;
    cfg.gatedFfn = true;
    cfg.rmsNorm = true;

    TrainOptions opts;
    opts.steps = 12;
    opts.seqLen = 16;

    auto run = [&](BlockRecompute mode) {
        TinyLM model(cfg);
        TrainOptions o = opts;
        o.recompute.assign(cfg.blocks, mode);
        return trainTinyLM(model, o).losses;
    };
    const auto none = run(BlockRecompute::None);
    const auto full = run(BlockRecompute::Full);
    for (std::size_t i = 0; i < none.size(); ++i)
        EXPECT_EQ(none[i], full[i]) << "step " << i;
}

TEST(Optim, ClipGradNormScalesDown)
{
    Variable a(Tensor::full({4}, 1.0f), true);
    Variable b(Tensor::full({3}, 1.0f), true);
    a.zeroGrad();
    b.zeroGrad();
    for (std::int64_t i = 0; i < 4; ++i)
        a.impl()->grad[i] = 3.0f;
    for (std::int64_t i = 0; i < 3; ++i)
        b.impl()->grad[i] = 4.0f;
    // Global norm = sqrt(4*9 + 3*16) = sqrt(84).
    const float norm = clipGradNorm({a, b}, 1.0f);
    EXPECT_NEAR(norm, std::sqrt(84.0f), 1e-5f);
    double after = 0;
    for (std::int64_t i = 0; i < 4; ++i)
        after += a.grad()[i] * a.grad()[i];
    for (std::int64_t i = 0; i < 3; ++i)
        after += b.grad()[i] * b.grad()[i];
    EXPECT_NEAR(std::sqrt(after), 1.0f, 1e-5f);
}

TEST(Optim, ClipGradNormNoOpBelowThreshold)
{
    Variable a(Tensor::full({2}, 1.0f), true);
    a.zeroGrad();
    a.impl()->grad[0] = 0.3f;
    a.impl()->grad[1] = 0.4f;
    const float norm = clipGradNorm({a}, 10.0f);
    EXPECT_NEAR(norm, 0.5f, 1e-6f);
    EXPECT_FLOAT_EQ(a.grad()[0], 0.3f);
    EXPECT_FLOAT_EQ(a.grad()[1], 0.4f);
}

TEST(Optim, AdamWeightDecayShrinksParams)
{
    // Zero gradients: pure decoupled decay.
    Variable x(Tensor::full({4}, 2.0f), true);
    Adam adam({x}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f,
              /*weight_decay=*/0.5f);
    adam.zeroGrad();
    adam.step();
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(x.value()[i], 2.0f - 0.1f * 0.5f * 2.0f, 1e-5f);
}

TEST(LlamaStyle, RmsNormHasNoBetaParam)
{
    LayerNormModule ln(8, /*rms=*/false);
    LayerNormModule rms(8, /*rms=*/true);
    EXPECT_EQ(ln.params().size(), 2u);
    EXPECT_EQ(rms.params().size(), 1u);
}

} // namespace
} // namespace adapipe
