/**
 * @file
 * Tests for adaptive partitioning (Algorithm 1), the stage-cost
 * calculator and the isomorphism cache.
 */

#include <gtest/gtest.h>

#include "core/partition_dp.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

/** A small but realistic planning fixture. */
class PartitionTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 8192;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
    }

    ProfiledModel
    profiled() const
    {
        return buildProfiledModel(model, train, par, cluster);
    }
};

TEST_F(PartitionTest, EvenPartitionCoversAllLayers)
{
    for (int p : {2, 4, 5, 8}) {
        const int L = 2 * model.numBlocks + 2;
        const auto ranges = evenPartition(L, p);
        ASSERT_EQ(static_cast<int>(ranges.size()), p);
        EXPECT_EQ(ranges.front().first, 0);
        EXPECT_EQ(ranges.back().second, L - 1);
        for (int s = 1; s < p; ++s)
            EXPECT_EQ(ranges[s].first, ranges[s - 1].second + 1);
        // Every stage holds whole blocks (even layer counts apart
        // from embedding/head attachments).
        for (int s = 0; s < p; ++s) {
            int layers = ranges[s].second - ranges[s].first + 1;
            if (s == 0)
                layers -= 1;
            if (s == p - 1)
                layers -= 1;
            EXPECT_EQ(layers % 2, 0) << "stage " << s;
        }
    }
}

TEST_F(PartitionTest, EvenPartitionDistributesRemainderToEarlyStages)
{
    // 10 blocks over 4 stages: 3, 3, 2, 2.
    const auto ranges = evenPartition(2 * 10 + 2, 4);
    EXPECT_EQ(ranges[0].second - ranges[0].first + 1, 7); // embed + 3
    EXPECT_EQ(ranges[1].second - ranges[1].first + 1, 6);
    EXPECT_EQ(ranges[2].second - ranges[2].first + 1, 4);
    EXPECT_EQ(ranges[3].second - ranges[3].first + 1, 5); // 2 + head
}

TEST_F(PartitionTest, AdaptivePartitionCoversAllLayers)
{
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const auto r =
        solveAdaptivePartition(calc, pm.numLayers(), par.pipeline, n);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(static_cast<int>(r.ranges.size()), par.pipeline);
    EXPECT_EQ(r.ranges.front().first, 0);
    EXPECT_EQ(r.ranges.back().second, pm.numLayers() - 1);
    for (int s = 1; s < par.pipeline; ++s)
        EXPECT_EQ(r.ranges[s].first, r.ranges[s - 1].second + 1);
}

TEST_F(PartitionTest, AdaptiveNeverWorseThanEvenPartition)
{
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const auto adaptive =
        solveAdaptivePartition(calc, pm.numLayers(), par.pipeline, n);
    const auto even = evaluateFixedPartition(
        calc, evenPartition(pm.numLayers(), par.pipeline), n);
    ASSERT_TRUE(adaptive.feasible);
    ASSERT_TRUE(even.feasible);
    // The DP optimises over all partitions including the even one.
    EXPECT_LE(adaptive.timing.total, even.timing.total + 1e-9);
}

TEST_F(PartitionTest, MovesLayersFromEarlyToLateStages)
{
    // The paper's Table 4 signature: with tight memory, early stages
    // recompute more, so AdaPipe assigns them fewer layers.
    train.seqLen = 16384;
    cluster.device.memCapacity = GiB(18); // force heavy recomputation
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const auto r =
        solveAdaptivePartition(calc, pm.numLayers(), par.pipeline, n);
    ASSERT_TRUE(r.feasible);
    const auto span = [&](int s) {
        return r.ranges[s].second - r.ranges[s].first + 1;
    };
    EXPECT_LE(span(0), span(par.pipeline - 1) + 1);
}

TEST_F(PartitionTest, IsomorphismCacheReducesKnapsackRuns)
{
    train.seqLen = 16384;
    cluster.device.memCapacity = GiB(18); // keep the knapsack active
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);

    StageCostOptions with_iso;
    with_iso.useIsomorphism = true;
    StageCostCalculator calc_iso(pm, par.pipeline, n, with_iso);
    solveAdaptivePartition(calc_iso, pm.numLayers(), par.pipeline, n);

    StageCostOptions no_iso;
    no_iso.useIsomorphism = false;
    StageCostCalculator calc_raw(pm, par.pipeline, n, no_iso);
    solveAdaptivePartition(calc_raw, pm.numLayers(), par.pipeline, n);

    EXPECT_LT(calc_iso.knapsackRuns(), calc_raw.knapsackRuns());
    EXPECT_GT(calc_iso.cacheHits(), 0u);
}

TEST_F(PartitionTest, IsomorphismDoesNotChangeResult)
{
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);

    StageCostOptions with_iso;
    with_iso.useIsomorphism = true;
    StageCostCalculator calc_iso(pm, par.pipeline, n, with_iso);
    const auto a =
        solveAdaptivePartition(calc_iso, pm.numLayers(), par.pipeline,
                               n);

    StageCostOptions no_iso;
    no_iso.useIsomorphism = false;
    StageCostCalculator calc_raw(pm, par.pipeline, n, no_iso);
    const auto b =
        solveAdaptivePartition(calc_raw, pm.numLayers(), par.pipeline,
                               n);

    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_NEAR(a.timing.total, b.timing.total, 1e-9);
    EXPECT_EQ(a.ranges, b.ranges);
}

TEST_F(PartitionTest, StageCostFeasibilityMonotoneInMemory)
{
    // Shrinking the device memory can only make ranges infeasible.
    ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const StageCost &ok = calc.cost(0, 0, pm.numLayers() / 2);
    ASSERT_TRUE(ok.feasible);

    pm.memCapacity = GiB(2);
    StageCostCalculator tight(pm, par.pipeline, n);
    const StageCost &bad = tight.cost(0, 0, pm.numLayers() / 2);
    EXPECT_FALSE(bad.feasible);
}

TEST_F(PartitionTest, LaterStagesSaveMoreUnits)
{
    // Table 4's monotone saved-unit counts: later stages keep fewer
    // in-flight micro-batches, so the same range saves more.
    train.seqLen = 16384;
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const auto ranges = evenPartition(pm.numLayers(), par.pipeline);
    // Compare interior stages with identical ranges shapes: stage 1
    // and stage 2 hold the same layer count here.
    const StageCost &s1 = calc.cost(1, ranges[1].first,
                                    ranges[1].second);
    const StageCost &s2 = calc.cost(2, ranges[2].first,
                                    ranges[2].second);
    ASSERT_TRUE(s1.feasible && s2.feasible);
    EXPECT_LE(s1.recompute.savedUnits, s2.recompute.savedUnits);
    // And the backward time shrinks accordingly.
    EXPECT_GE(s1.bwd, s2.bwd - 1e-9);
}

TEST_F(PartitionTest, FixedPartitionBaselinesOrdering)
{
    const ProfiledModel pm = profiled();
    const int n = train.microBatches(par);
    StageCostCalculator calc(pm, par.pipeline, n);
    const auto ranges = evenPartition(pm.numLayers(), par.pipeline);

    const auto adaptive = evaluateFixedPartition(calc, ranges, n);
    const auto full = evaluateFixedPartition(calc, ranges, n, RecomputeBaseline::Full);
    ASSERT_TRUE(adaptive.feasible);
    ASSERT_TRUE(full.feasible);
    // Adaptive recomputation never recomputes more than full
    // recomputation, so it cannot be slower.
    EXPECT_LE(adaptive.timing.total, full.timing.total + 1e-9);
}

TEST_F(PartitionTest, RejectsMoreStagesThanLayers)
{
    const ProfiledModel pm = profiled();
    StageCostCalculator calc(pm, 2, 4);
    EXPECT_DEATH(solveAdaptivePartition(calc, 3, 4, 8),
                 "at least one layer per stage");
}

} // namespace
} // namespace adapipe
