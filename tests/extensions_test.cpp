/**
 * @file
 * Tests for the extension features: interleaved 1F1B (Sec. 2.1
 * background) and the selective recomputation baseline (Sec. 2.2).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/partition_dp.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "core/stage_cost.h"
#include "hw/cluster.h"
#include "memory/memory_model.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "sim/interleaved_planner.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"

namespace adapipe {
namespace {

TEST(Interleaved, VEqualsOneIsPlain1F1B)
{
    const Schedule s = buildInterleaved1F1B(4, 8, 1);
    EXPECT_EQ(s.name, "1F1B");
}

TEST(Interleaved, OpCountsAndPositions)
{
    const int p = 4;
    const int n = 8;
    const int v = 2;
    const Schedule s = buildInterleaved1F1B(p, n, v);
    EXPECT_EQ(s.chainLength, v * p);
    EXPECT_EQ(s.ops.size(), static_cast<std::size_t>(2 * n * v * p));
    for (const PipeOp &op : s.ops)
        EXPECT_EQ(op.device, op.pos % p);
}

/**
 * The headline property (Sec. 2.1): v virtual chunks divide the
 * bubble by v while increasing in-flight activations.
 */
class InterleavedBubble : public ::testing::TestWithParam<int>
{};

TEST_P(InterleavedBubble, BubbleShrinksByV)
{
    const int v = GetParam();
    const int p = 4;
    const int n = 8;
    // Total per-device work held constant: each chunk is 1/v of a
    // stage.
    const std::vector<StageTimes> stages(
        v * p, StageTimes{1.0 / v, 2.0 / v});
    const SimResult r =
        simulate(buildInterleaved1F1B(p, n, v), stages, {});
    // 1F1B idle time per device over the whole iteration is
    // (p - 1)(F + B); interleaving divides it by v.
    const double expected = (p - 1) * 3.0 / v;
    for (int d = 0; d < p; ++d) {
        EXPECT_NEAR(r.iterationTime - r.deviceBusy[d], expected, 1e-9)
            << "device " << d;
    }
}

INSTANTIATE_TEST_SUITE_P(V, InterleavedBubble,
                         ::testing::Values(1, 2, 4));

TEST(Interleaved, MoreChunksMeansMoreInflightActivations)
{
    const int p = 4;
    const int n = 8;
    int prev = 0;
    for (int v : {1, 2, 4}) {
        const std::vector<StageTimes> stages(
            v * p, StageTimes{1.0 / v, 2.0 / v});
        const SimResult r =
            simulate(buildInterleaved1F1B(p, n, v), stages, {});
        EXPECT_GT(r.peakAlive[0], prev);
        prev = r.peakAlive[0];
    }
}

TEST(Interleaved, EndToEndFasterButHeavier)
{
    const ModelConfig model = gpt3_13b();
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 16;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 4;
    par.data = 1;
    const ClusterSpec cluster = clusterA(4);
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);

    const EndToEndResult v1 =
        evaluateInterleaved(pm, 1, RecomputeBaseline::Full);
    const EndToEndResult v2 =
        evaluateInterleaved(pm, 2, RecomputeBaseline::Full);
    ASSERT_TRUE(v1.feasible && v2.feasible);
    EXPECT_LT(v2.iterationTime, v1.iterationTime);
    // Interleaving pins more in-flight chunk activations.
    EXPECT_GE(v2.peakAlive[0], v1.peakAlive[0]);
}

TEST(Interleaved, TryBuildNamesTheBadField)
{
    EXPECT_FALSE(tryBuildInterleaved1F1B(0, 8, 2).ok());
    EXPECT_NE(tryBuildInterleaved1F1B(0, 8, 2).error().find(
                  "parallel.pipeline"),
              std::string::npos);
    EXPECT_NE(
        tryBuildInterleaved1F1B(4, 0, 2).error().find("micro_batches"),
        std::string::npos);
    EXPECT_NE(tryBuildInterleaved1F1B(4, 8, 0).error().find(
                  "virtual_stages"),
              std::string::npos);
    // Megatron's divisibility constraint names both fields involved.
    const ParseResult<Schedule> indivisible =
        tryBuildInterleaved1F1B(3, 8, 2);
    ASSERT_FALSE(indivisible.ok());
    EXPECT_NE(indivisible.error().find("micro_batches"),
              std::string::npos);
    EXPECT_NE(indivisible.error().find("parallel.pipeline"),
              std::string::npos);
    // And the valid neighbours still build.
    EXPECT_TRUE(tryBuildInterleaved1F1B(3, 8, 1).ok());
    EXPECT_TRUE(tryBuildInterleaved1F1B(4, 8, 2).ok());
}

TEST(Interleaved, EvaluateRejectsInvalidConfigGracefully)
{
    // evaluateInterleaved used to ADAPIPE_ASSERT on these; they are
    // user-reachable through CLI sweeps and must come back as
    // infeasible results carrying the builder's diagnostic.
    const ModelConfig model = gpt3_13b();
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 9; // 9 micro-batches, p = 4 -> indivisible
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 4;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, clusterA(4));

    const EndToEndResult bad_v =
        evaluateInterleaved(pm, 0, RecomputeBaseline::Full);
    EXPECT_FALSE(bad_v.feasible);
    EXPECT_NE(bad_v.oomReason.find("virtual_stages"),
              std::string::npos);

    const EndToEndResult indivisible =
        evaluateInterleaved(pm, 2, RecomputeBaseline::Full);
    EXPECT_FALSE(indivisible.feasible);
    EXPECT_NE(indivisible.oomReason.find("micro_batches"),
              std::string::npos);
}

/**
 * Cross-check: evaluateInterleaved's timing must equal an actual
 * event-simulator run of the interleaved schedule over the same
 * per-chunk costs — the closed-form shortcut it replaced is gone.
 */
class InterleavedCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(InterleavedCrossCheck, EvaluateMatchesDirectSimulation)
{
    const auto [p, v, n_per_p] = GetParam();
    const ModelConfig model = gpt3_13b();
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = n_per_p * p;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = p;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, clusterA(4));
    const int n = pm.train.microBatches(pm.par);
    ASSERT_EQ(n, n_per_p * p);

    const EndToEndResult eval =
        evaluateInterleaved(pm, v, RecomputeBaseline::Full);
    ASSERT_TRUE(eval.feasible) << eval.oomReason;

    // Rebuild the exact inputs evaluateInterleaved feeds the
    // simulator: an even chunk partition costed per chunk.
    const int chunks = v * p;
    const auto ranges = evenPartition(pm.numLayers(), chunks);
    StageCostCalculator calc(pm, p, n, {});
    std::vector<StageTimes> times(chunks);
    for (int g = 0; g < chunks; ++g) {
        const auto [i, j] = ranges[static_cast<std::size_t>(g)];
        const StageCost c =
            calc.baselineCost(0, i, j, RecomputeBaseline::Full);
        times[static_cast<std::size_t>(g)] = {c.fwd, c.bwd};
    }
    const ParseResult<Schedule> built =
        tryBuildInterleaved1F1B(p, n, v);
    ASSERT_TRUE(built.ok()) << built.error();
    const SimResult sim =
        simulate(built.value(), times, {pm.p2pTime});

    EXPECT_DOUBLE_EQ(eval.iterationTime, sim.iterationTime);
    EXPECT_DOUBLE_EQ(eval.bubbleTime, sim.totalBubbleTime());
    ASSERT_EQ(eval.peakAlive.size(), sim.peakAlive.size());
    for (std::size_t d = 0; d < sim.peakAlive.size(); ++d)
        EXPECT_EQ(eval.peakAlive[d], sim.peakAlive[d]) << d;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InterleavedCrossCheck,
    ::testing::Values(std::make_tuple(2, 2, 2),
                      std::make_tuple(2, 4, 3),
                      std::make_tuple(4, 2, 2),
                      std::make_tuple(4, 4, 2)));

class InterleavedPlannerTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 4096;
        train.globalBatch = 16;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
    }

    ProfiledModel
    profiled() const
    {
        return buildProfiledModel(model, train, par, cluster);
    }
};

TEST_F(InterleavedPlannerTest, ChunkPeaksMatchMemoryModelForV1)
{
    // For plain 1F1B the exact per-position peaks walked off the
    // schedule must reproduce the closed form min(p - s, n).
    const int p = 4;
    const int n = 16;
    const auto peaks = chunkInflightPeaks(build1F1B(p, n));
    ASSERT_EQ(peaks.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
        EXPECT_EQ(peaks[static_cast<std::size_t>(s)],
                  MemoryModel::inflightMicroBatches(s, p, n))
            << "stage " << s;
    }
}

TEST_F(InterleavedPlannerTest, ChunkPeaksDropTowardTheChainTail)
{
    const auto peaks = chunkInflightPeaks(buildInterleaved1F1B(4, 8, 2));
    ASSERT_EQ(peaks.size(), 8u);
    // The chain head holds the most in-flight micro-batches, the
    // tail the fewest — same shape as 1F1B, spread over v * p
    // positions.
    EXPECT_GT(peaks.front(), peaks.back());
    for (std::size_t g = 1; g < peaks.size(); ++g)
        EXPECT_LE(peaks[g], peaks[g - 1]) << "pos " << g;
}

TEST_F(InterleavedPlannerTest, PlanHasChunkStagesAndSimTiming)
{
    const ProfiledModel pm = profiled();
    const int v = 2;
    const PlanResult result =
        makeInterleavedPlan(pm, PlanMethod::AdaPipe, v);
    ASSERT_TRUE(result.ok) << result.oomReason;
    EXPECT_EQ(result.plan.virtualStages, v);
    ASSERT_EQ(result.plan.stages.size(),
              static_cast<std::size_t>(v * par.pipeline));
    // Chunk boundaries cover the layer sequence contiguously.
    EXPECT_EQ(result.plan.stages.front().firstLayer, 0);
    EXPECT_EQ(result.plan.stages.back().lastLayer,
              pm.numLayers() - 1);
    for (std::size_t g = 1; g < result.plan.stages.size(); ++g) {
        EXPECT_EQ(result.plan.stages[g].firstLayer,
                  result.plan.stages[g - 1].lastLayer + 1);
    }
    EXPECT_GT(result.plan.timing.total, 0.0);

    // v = 1 through the same entry point degenerates to makePlan.
    const PlanResult v1 =
        makeInterleavedPlan(pm, PlanMethod::AdaPipe, 1);
    ASSERT_TRUE(v1.ok);
    EXPECT_EQ(v1.plan.virtualStages, 1);
    EXPECT_EQ(v1.plan.stages.size(),
              static_cast<std::size_t>(par.pipeline));
}

TEST_F(InterleavedPlannerTest, BestSchedulePicksTheFastestV)
{
    const ProfiledModel pm = profiled();
    const PlanResult best =
        makeBestSchedulePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(best.ok) << best.oomReason;
    for (const int v : {1, 2, 4}) {
        const PlanResult cand =
            makeInterleavedPlan(pm, PlanMethod::AdaPipe, v);
        if (cand.ok) {
            EXPECT_LE(best.plan.timing.total,
                      cand.plan.timing.total + 1e-9)
                << "v=" << v;
        }
    }
}

TEST_F(InterleavedPlannerTest, PlanJsonRoundTripsVirtualStages)
{
    const ProfiledModel pm = profiled();
    const PlanResult result =
        makeInterleavedPlan(pm, PlanMethod::AdaPipe, 2);
    ASSERT_TRUE(result.ok) << result.oomReason;
    const std::string text = planToJsonString(result.plan);
    const ParseResult<PipelinePlan> back =
        tryPlanFromJsonString(text);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back.value().virtualStages, 2);
    EXPECT_EQ(back.value().stages.size(), result.plan.stages.size());
}

class BPipeTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 8192;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
    }
};

TEST_F(BPipeTest, NoEvictionMeansNoOverhead)
{
    // With ample memory BPipe degenerates to plain DAPPLE.
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const auto non = evaluateBaseline(
        pm, BaselineSchedule::Dapple, RecomputeBaseline::None);
    const auto bpipe = evaluateBPipe(pm, RecomputeBaseline::None);
    ASSERT_TRUE(non.feasible && bpipe.feasible);
    EXPECT_NEAR(bpipe.iterationTime, non.iterationTime,
                1e-9 * non.iterationTime);
}

TEST_F(BPipeTest, RescuesOomWithTransferPenalty)
{
    // Pick a capacity between DAPPLE-Non's stage-0 demand and the
    // pair-balanced demand: Non OOMs, BPipe fits but pays transfers.
    train.seqLen = 16384;
    ProfiledModel pm = buildProfiledModel(model, train, par, cluster);
    const auto ample = evaluateBaseline(
        pm, BaselineSchedule::Dapple, RecomputeBaseline::None);
    ASSERT_TRUE(ample.feasible);
    Bytes worst = 0;
    Bytes total = 0;
    for (Bytes b : ample.deviceMem) {
        worst = std::max(worst, b);
        total += b;
    }
    const Bytes avg = total / ample.deviceMem.size();
    pm.memCapacity = (worst + avg) / 2;

    const auto non = evaluateBaseline(
        pm, BaselineSchedule::Dapple, RecomputeBaseline::None);
    EXPECT_FALSE(non.feasible);
    const auto bpipe = evaluateBPipe(pm, RecomputeBaseline::None);
    ASSERT_TRUE(bpipe.feasible) << bpipe.oomReason;
    // The rescue costs time relative to the unconstrained run.
    EXPECT_GT(bpipe.iterationTime, ample.iterationTime);
    // And every device now fits.
    for (Bytes b : bpipe.deviceMem)
        EXPECT_LE(b, pm.memCapacity);
}

TEST_F(BPipeTest, FailsWhenPairsJointlyOverflow)
{
    train.seqLen = 16384;
    ProfiledModel pm = buildProfiledModel(model, train, par, cluster);
    pm.memCapacity = GiB(12); // below the pair average
    const auto bpipe = evaluateBPipe(pm, RecomputeBaseline::None);
    EXPECT_FALSE(bpipe.feasible);
    EXPECT_NE(bpipe.oomReason.find("overflows its pair"),
              std::string::npos);
}

class SelectiveTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 4096;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
        par.flashAttention = false; // the pre-flash era
        cluster.device.memCapacity = GiB(400); // feasibility off
        cluster.device.reservedBytes = 0;
    }

    ProfiledModel
    profiled() const
    {
        return buildProfiledModel(model, train, par, cluster);
    }
};

TEST_F(SelectiveTest, TimeOrderingNonSelectiveFull)
{
    const ProfiledModel pm = profiled();
    const PlanResult non = makePlan(pm, PlanMethod::DappleNon);
    const PlanResult sel = makePlan(pm, PlanMethod::DappleSelective);
    const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
    ASSERT_TRUE(non.ok && sel.ok && full.ok);
    EXPECT_LT(non.plan.timing.total, sel.plan.timing.total);
    EXPECT_LT(sel.plan.timing.total, full.plan.timing.total);
}

TEST_F(SelectiveTest, MemoryOrderingFullSelectiveNon)
{
    const ProfiledModel pm = profiled();
    const auto full =
        evaluateBaseline(pm, BaselineSchedule::Dapple,
                         RecomputeBaseline::Full);
    const auto sel =
        evaluateBaseline(pm, BaselineSchedule::Dapple,
                         RecomputeBaseline::Selective);
    const auto non =
        evaluateBaseline(pm, BaselineSchedule::Dapple,
                         RecomputeBaseline::None);
    for (int d = 0; d < par.pipeline; ++d) {
        EXPECT_LT(full.deviceMem[d], sel.deviceMem[d]) << d;
        EXPECT_LT(sel.deviceMem[d], non.deviceMem[d]) << d;
    }
}

TEST_F(SelectiveTest, DropsTheQuadraticTensors)
{
    // At long sequences the s^2 score/softmax tensors dominate:
    // selective recomputation should remove most of the gap between
    // no-recompute and full-recompute memory.
    train.seqLen = 16384;
    const ProfiledModel pm = profiled();
    MemoryModel mm(model, train, par);
    const int last = pm.numLayers() - 1;
    const Bytes non = mm.noRecomputeSavedPerMb(pm.rawLayers, 0, last);
    const Bytes sel =
        mm.selectiveRecomputeSavedPerMb(pm.rawLayers, 0, last);
    const Bytes full =
        mm.fullRecomputeSavedPerMb(pm.rawLayers, 0, last);
    EXPECT_LT(sel, non);
    EXPECT_GT(sel, full);
    // More than half of the non-vs-full gap closed.
    EXPECT_LT(static_cast<double>(sel - full),
              0.5 * static_cast<double>(non - full));
}

TEST_F(SelectiveTest, FlashAttentionSupersedesSelective)
{
    // With flash attention there are no selective units; selective
    // equals no recomputation (Sec. 2.2: flash "supersedes the
    // selective recomputation strategy").
    par.flashAttention = true;
    const ProfiledModel pm = profiled();
    MemoryModel mm(model, train, par);
    const int last = pm.numLayers() - 1;
    EXPECT_EQ(mm.selectiveRecomputeSavedPerMb(pm.rawLayers, 0, last),
              mm.noRecomputeSavedPerMb(pm.rawLayers, 0, last));

    const PlanResult non = makePlan(pm, PlanMethod::DappleNon);
    const PlanResult sel = makePlan(pm, PlanMethod::DappleSelective);
    ASSERT_TRUE(non.ok && sel.ok);
    EXPECT_DOUBLE_EQ(non.plan.timing.total, sel.plan.timing.total);
}

TEST_F(SelectiveTest, AdaptiveMatchesOrBeatsSelective)
{
    // AdaPipe's knapsack includes "recompute exactly the attention
    // internals" in its search space, so it can only do better.
    cluster.device.memCapacity = GiB(60);
    const ProfiledModel pm = profiled();
    const PlanResult sel = makePlan(pm, PlanMethod::DappleSelective);
    const PlanResult ada = makePlan(pm, PlanMethod::EvenPartition);
    if (!sel.ok || !ada.ok)
        GTEST_SKIP() << "configuration infeasible";
    EXPECT_LE(ada.plan.timing.total, sel.plan.timing.total + 1e-9);
}

} // namespace
} // namespace adapipe
