/**
 * @file
 * Tests for the end-to-end evaluation layer (sim/baseline_eval):
 * memory composition of the baseline schedules and consistency of
 * the two evaluation routes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"

namespace adapipe {
namespace {

class BaselineEvalTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 8192;
        train.globalBatch = 32;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
    }

    ProfiledModel
    profiled() const
    {
        return buildProfiledModel(model, train, par, cluster);
    }
};

TEST_F(BaselineEvalTest, ScheduleNames)
{
    EXPECT_STREQ(baselineScheduleName(BaselineSchedule::Dapple),
                 "DAPPLE");
    EXPECT_STREQ(baselineScheduleName(BaselineSchedule::GPipe),
                 "GPipe");
    EXPECT_STREQ(baselineScheduleName(BaselineSchedule::Chimera),
                 "Chimera");
    EXPECT_STREQ(baselineScheduleName(BaselineSchedule::ChimeraD),
                 "ChimeraD");
}

TEST_F(BaselineEvalTest, DappleNonMemoryDecreasesWithStage)
{
    // Fig. 8's DAPPLE-Non slope: interior stages drop by one
    // micro-batch of activations each.
    const ProfiledModel pm = profiled();
    const auto r =
        evaluateBaseline(pm, BaselineSchedule::Dapple, false);
    for (int s = 1; s < par.pipeline - 1; ++s)
        EXPECT_LT(r.deviceMem[s + 1], r.deviceMem[s]) << "stage " << s;
}

TEST_F(BaselineEvalTest, FullRecomputeUsesLessMemoryThanNone)
{
    const ProfiledModel pm = profiled();
    const auto full =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    const auto non =
        evaluateBaseline(pm, BaselineSchedule::Dapple, false);
    for (int s = 0; s < par.pipeline; ++s)
        EXPECT_LT(full.deviceMem[s], non.deviceMem[s]);
    // ... but takes longer.
    EXPECT_GT(full.iterationTime, non.iterationTime);
}

TEST_F(BaselineEvalTest, ChimeraDuplicatesParamsNotOptimizer)
{
    // Chimera-Full vs DAPPLE-Full: extra memory is bounded by the
    // duplicated fp16 params + grads (optimizer is re-sharded over
    // the two chains).
    const ProfiledModel pm = profiled();
    const auto dapple =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    const auto chimera =
        evaluateBaseline(pm, BaselineSchedule::Chimera, true);
    MemoryModel mm(model, train, par);
    const StaticMemory stage =
        mm.staticMemory(pm.rangeParams(0, pm.numLayers() - 1) /
                        par.pipeline);
    for (int d = 0; d < par.pipeline; ++d) {
        EXPECT_GT(chimera.deviceMem[d], dapple.deviceMem[d]);
        // The duplication overhead never exceeds ~2x one stage's
        // params+grads plus activation noise.
        EXPECT_LT(chimera.deviceMem[d],
                  dapple.deviceMem[d] +
                      2 * (stage.params + stage.grads) +
                      GiB(4));
    }
}

TEST_F(BaselineEvalTest, ChimeraDStoresMoreThanChimera)
{
    // Fig. 8: forward doubling doubles in-flight activations.
    const ProfiledModel pm = profiled();
    const auto chi =
        evaluateBaseline(pm, BaselineSchedule::Chimera, false);
    const auto chid =
        evaluateBaseline(pm, BaselineSchedule::ChimeraD, false);
    int chi_peak = 0;
    int chid_peak = 0;
    for (int d = 0; d < par.pipeline; ++d) {
        chi_peak = std::max(chi_peak, chi.peakAlive[d]);
        chid_peak = std::max(chid_peak, chid.peakAlive[d]);
    }
    EXPECT_GT(chid_peak, chi_peak);
}

TEST_F(BaselineEvalTest, MicroStepTimesMatchBaselineCost)
{
    const ProfiledModel pm = profiled();
    const auto r =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    // Full recompute roughly doubles forward work in backward:
    // micro-step ~ 2F + B with B ~ 2F. All stages similar.
    for (int s = 1; s < par.pipeline; ++s) {
        EXPECT_NEAR(r.microStepTime[s], r.microStepTime[0],
                    0.15 * r.microStepTime[0]);
    }
}

TEST_F(BaselineEvalTest, SimulatePlanMatchesPlannedStages)
{
    const ProfiledModel pm = profiled();
    const PlanResult r = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(r.ok);
    const EndToEndResult e = simulatePlan(pm, r.plan);
    ASSERT_EQ(e.deviceMem.size(), r.plan.stages.size());
    for (std::size_t s = 0; s < r.plan.stages.size(); ++s) {
        EXPECT_EQ(e.deviceMem[s], r.plan.stages[s].memPeak);
        EXPECT_DOUBLE_EQ(e.microStepTime[s],
                         r.plan.stages[s].timeFwd +
                             r.plan.stages[s].timeBwd);
    }
    // 1F1B in-flight invariant holds for the planned schedule too.
    for (int s = 0; s < par.pipeline; ++s)
        EXPECT_EQ(e.peakAlive[s], par.pipeline - s);
}

TEST_F(BaselineEvalTest, GPipeSlowedByMemoryNotTime)
{
    const ProfiledModel pm = profiled();
    const auto gpipe =
        evaluateBaseline(pm, BaselineSchedule::GPipe, false);
    const auto dapple =
        evaluateBaseline(pm, BaselineSchedule::Dapple, false);
    EXPECT_NEAR(gpipe.iterationTime, dapple.iterationTime,
                0.02 * dapple.iterationTime);
    for (int d = 0; d < par.pipeline; ++d)
        EXPECT_GE(gpipe.deviceMem[d], dapple.deviceMem[d]);
}

/**
 * Property: across pipeline sizes, the DAPPLE-Non stage-0 memory
 * grows with p (more in-flight micro-batches) while per-stage
 * compute shrinks.
 */
class PipelineSizeProperty : public ::testing::TestWithParam<int>
{};

TEST_P(PipelineSizeProperty, InflightScalesWithP)
{
    const int p = GetParam();
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 64;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = p;
    par.data = 1;
    const ClusterSpec cluster = clusterA(p);
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const auto r =
        evaluateBaseline(pm, BaselineSchedule::Dapple, false);
    EXPECT_EQ(r.peakAlive.front(), p);
    EXPECT_EQ(r.peakAlive.back(), 1);
}

INSTANTIATE_TEST_SUITE_P(P, PipelineSizeProperty,
                         ::testing::Values(2, 4, 8));

} // namespace
} // namespace adapipe
