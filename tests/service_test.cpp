/**
 * @file
 * Tests for the plan service: protocol parsing and fingerprinting,
 * the LRU response cache, the cross-request knapsack memo, warm/cold
 * determinism (byte-identical responses, >= 10x faster warm), replan
 * equivalence with a direct replanDegraded() call, and the TCP server
 * under concurrent clients.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/knapsack_memo.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "robust/replan_io.h"
#include "service/client.h"
#include "service/handlers.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "obs/macros.h"
#include "service/server.h"
#include "util/canonical_json.h"

namespace adapipe {
namespace {

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** A fast-to-plan request against the test model. */
std::string
tinyRequestLine(const std::string &kind, int pipeline = 2)
{
    return std::string("{\"kind\": \"") + kind +
           "\", \"plan\": {\"model\": \"tiny-test\", "
           "\"cluster\": {\"name\": \"a\", \"nodes\": 1}, "
           "\"train\": {\"seq_len\": 128, \"global_batch\": 8}, "
           "\"parallel\": {\"tensor\": 1, \"pipeline\": " +
           std::to_string(pipeline) + "}}}";
}

/**
 * A realistically sized request. Sequence length 8192 is memory-tight
 * enough that the recompute knapsack actually runs (shorter sequences
 * take the everything-fits fast path and never touch the memo).
 */
std::string
mediumRequestLine(const std::string &kind, int pipeline = 2,
                  const std::string &fault = "", int seq = 2048)
{
    return std::string("{\"kind\": \"") + kind +
           "\", \"plan\": {\"model\": \"gpt3-13b\", "
           "\"cluster\": {\"name\": \"a\", \"nodes\": 2}, "
           "\"train\": {\"seq_len\": " + std::to_string(seq) +
           ", \"global_batch\": 32}, "
           "\"parallel\": {\"tensor\": 4, \"pipeline\": " +
           std::to_string(pipeline) + "}}" +
           (fault.empty() ? "" : ", \"fault\": " + fault) + "}";
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServiceProtocol, MinimalRequestsParseWithDefaults)
{
    const ParseResult<ServiceRequest> stats =
        tryServiceRequestFromJsonString("{\"kind\": \"stats\"}");
    ASSERT_TRUE(stats.ok()) << stats.error();
    EXPECT_EQ(stats.value().kind, RequestKind::Stats);

    // An empty problem object means "all wire defaults".
    const ParseResult<ServiceRequest> plan =
        tryServiceRequestFromJsonString(
            "{\"kind\": \"plan\", \"plan\": {}}");
    ASSERT_TRUE(plan.ok()) << plan.error();
    EXPECT_EQ(plan.value().plan.model, "gpt3-13b");
    EXPECT_EQ(plan.value().plan.scheduleFamily, "1f1b");

    // A plan-carrying kind without the problem object is an error.
    const ParseResult<ServiceRequest> bare =
        tryServiceRequestFromJsonString("{\"kind\": \"plan\"}");
    ASSERT_FALSE(bare.ok());
    EXPECT_NE(bare.error().find("plan"), std::string::npos)
        << bare.error();
}

TEST(ServiceProtocol, FingerprintIgnoresKeyOrderAndSpelledDefaults)
{
    // The same problem three ways: minimal, defaults spelled out, and
    // with the keys permuted. All must share one cache identity.
    const ParseResult<ServiceRequest> minimal =
        tryServiceRequestFromJsonString(tinyRequestLine("plan"));
    const ParseResult<ServiceRequest> spelled =
        tryServiceRequestFromJsonString(
            "{\"kind\": \"plan\", \"plan\": {"
            "\"cluster\": {\"nodes\": 1, \"name\": \"a\"}, "
            "\"model\": \"tiny-test\", "
            "\"method\": \"adapipe\", "
            "\"schedule\": {\"family\": \"1f1b\"}, "
            "\"parallel\": {\"pipeline\": 2, \"tensor\": 1, "
            "\"data\": 1}, "
            "\"train\": {\"global_batch\": 8, \"seq_len\": 128, "
            "\"micro_batch\": 1}}}");
    ASSERT_TRUE(minimal.ok()) << minimal.error();
    ASSERT_TRUE(spelled.ok()) << spelled.error();
    EXPECT_EQ(requestFingerprint(minimal.value().plan),
              requestFingerprint(spelled.value().plan));

    // A different problem must not collide.
    const ParseResult<ServiceRequest> other =
        tryServiceRequestFromJsonString(tinyRequestLine("plan", 4));
    ASSERT_TRUE(other.ok()) << other.error();
    EXPECT_NE(requestFingerprint(minimal.value().plan),
              requestFingerprint(other.value().plan));
}

TEST(ServiceProtocol, RejectsUnknownKindWithFieldPath)
{
    const ParseResult<ServiceRequest> r =
        tryServiceRequestFromJsonString("{\"kind\": \"frobnicate\"}");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("service.kind"), std::string::npos)
        << r.error();
}

TEST(ServiceProtocol, RejectsFaultOnNonReplanRequest)
{
    const ParseResult<ServiceRequest> r =
        tryServiceRequestFromJsonString(
            mediumRequestLine("plan", 2,
                              "{\"straggler_stage\": 0, "
                              "\"straggler_factor\": 2.0}"));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("fault"), std::string::npos)
        << r.error();
}

// ---------------------------------------------------------------------------
// Response cache

TEST(PlanCacheLru, EvictsLeastRecentlyUsedUnderByteBudget)
{
    // Each entry is 2 + 38 = 40 bytes; three fit a 100-byte budget
    // only by evicting the oldest.
    PlanCache cache(100);
    const std::string v(38, 'x');
    cache.put("a:", v);
    cache.put("b:", v);
    cache.put("c:", v);
    std::string out;
    EXPECT_FALSE(cache.get("a:", &out));
    EXPECT_TRUE(cache.get("b:", &out));
    EXPECT_TRUE(cache.get("c:", &out));
    EXPECT_EQ(out, v);
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1);
    EXPECT_EQ(stats.entries, 2);
    EXPECT_LE(stats.bytes, stats.capacityBytes);
}

TEST(PlanCacheLru, GetRefreshesRecency)
{
    PlanCache cache(100);
    const std::string v(38, 'x');
    cache.put("a:", v);
    cache.put("b:", v);
    std::string out;
    ASSERT_TRUE(cache.get("a:", &out)); // "a:" is now the MRU ...
    cache.put("c:", v);                 // ... so "b:" is evicted.
    EXPECT_TRUE(cache.get("a:", &out));
    EXPECT_FALSE(cache.get("b:", &out));
}

TEST(PlanCacheLru, OversizedEntryIsNotCached)
{
    PlanCache cache(16);
    cache.put("k", std::string(64, 'x'));
    std::string out;
    EXPECT_FALSE(cache.get("k", &out));
    EXPECT_EQ(cache.stats().entries, 0);
}

TEST(PlanCacheDisk, DocumentRoundTripCountsDiskHits)
{
    const std::string dir = ::testing::TempDir();
    const std::string fp = "cafebabe12345678";
    std::remove((dir + "/" + fp + ".json").c_str());
    {
        PlanCache cache(1 << 20, dir);
        EXPECT_TRUE(cache.putDocument(fp, "{\"x\": 1}\n"));
    }
    // A fresh cache (fresh process, conceptually) finds it on disk.
    PlanCache cache(1 << 20, dir);
    std::string doc;
    ASSERT_TRUE(cache.getDocument(fp, &doc));
    EXPECT_EQ(doc, "{\"x\": 1}\n");
    EXPECT_EQ(cache.stats().diskHits, 1);
    EXPECT_FALSE(cache.getDocument("0000000000000000", &doc));
    std::remove((dir + "/" + fp + ".json").c_str());
}

// ---------------------------------------------------------------------------
// Knapsack memo

TEST(KnapsackMemoTest, RepeatSubproblemHits)
{
    std::vector<UnitProfile> units(4);
    for (std::size_t i = 0; i < units.size(); ++i) {
        units[i].timeFwd = 1e-3 * static_cast<double>(i + 1);
        units[i].memSaved = Bytes{1} << (20 + i);
    }
    units[0].alwaysSaved = true;

    KnapsackMemo memo;
    bool hit = true;
    const RecomputePlanResult first =
        memo.solve(units, Bytes{4} << 20, {}, &hit);
    EXPECT_FALSE(hit);
    const RecomputePlanResult second =
        memo.solve(units, Bytes{4} << 20, {}, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.saved, second.saved);
    EXPECT_EQ(first.savedBytes, second.savedBytes);

    // A different budget is a different subproblem.
    memo.solve(units, Bytes{2} << 20, {}, &hit);
    EXPECT_FALSE(hit);

    const KnapsackMemoStats stats = memo.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 2);
    EXPECT_EQ(stats.entries, 2);

    memo.clear();
    EXPECT_EQ(memo.stats().entries, 0);
}

TEST(KnapsackMemoTest, MemoHitsGrowMonotonicallyAcrossServiceSweep)
{
    PlanService service;
    std::int64_t last_hits = 0;
    std::int64_t last_misses = 0;

    // A pipeline-depth sweep followed by fault reports revisits
    // identical (stage size, budget) knapsack subproblems; later
    // requests must hit the memo. Counters only ever grow.
    const std::string sweep[] = {
        mediumRequestLine("plan", 2, "", 8192),
        mediumRequestLine("plan", 4, "", 8192),
        mediumRequestLine("replan", 2,
                          "{\"straggler_stage\": 0, "
                          "\"straggler_factor\": 2.0}",
                          8192),
        mediumRequestLine("replan", 2,
                          "{\"straggler_stage\": 0, "
                          "\"straggler_factor\": 3.0}",
                          8192),
    };
    for (const std::string &line : sweep) {
        const std::string response = service.handleLine(line);
        ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
        const KnapsackMemoStats stats = service.memo().stats();
        EXPECT_GE(stats.hits, last_hits);
        EXPECT_GE(stats.misses, last_misses);
        last_hits = stats.hits;
        last_misses = stats.misses;
    }
    const KnapsackMemoStats final_stats = service.memo().stats();
    EXPECT_GT(final_stats.hits, 0);
    EXPECT_GT(final_stats.misses, 0);
    EXPECT_GT(final_stats.entries, 0);
    // A straggler changes times, not memory: the fault-report series
    // re-solves only subproblems the healthy plans already solved.
    EXPECT_EQ(final_stats.entries, final_stats.misses);
}

// ---------------------------------------------------------------------------
// Service determinism and latency

TEST(ServiceDeterminism, WarmResponseIsByteIdenticalToCold)
{
    PlanService service;
    for (const char *kind : {"plan", "explain"}) {
        const std::string line = tinyRequestLine(kind);
        const std::string cold = service.handleLine(line);
        const std::string warm = service.handleLine(line);
        ASSERT_EQ(cold.rfind("{\"ok\":true", 0), 0u) << cold;
        EXPECT_EQ(cold, warm) << kind;
    }
    EXPECT_GE(service.cache().stats().hits, 2);
}

TEST(ServiceDeterminism, WarmRequestsAreAtLeastTenTimesFaster)
{
    PlanService service;
    const std::string line = mediumRequestLine("plan");

    const double cold_start = nowUs();
    const std::string cold = service.handleLine(line);
    const double cold_us = nowUs() - cold_start;
    ASSERT_EQ(cold.rfind("{\"ok\":true", 0), 0u) << cold;

    std::vector<double> warm_us;
    for (int i = 0; i < 32; ++i) {
        const double start = nowUs();
        const std::string warm = service.handleLine(line);
        warm_us.push_back(nowUs() - start);
        ASSERT_EQ(warm, cold);
    }
    std::sort(warm_us.begin(), warm_us.end());
    const double warm_median = warm_us[warm_us.size() / 2];
    EXPECT_GE(cold_us, 10 * warm_median)
        << "cold " << cold_us << " us vs warm median " << warm_median
        << " us";
}

TEST(ServiceErrors, BadInputGetsDiagnosticNotAbort)
{
    PlanService service;
    const std::string truncated = service.handleLine("{\"kind\": ");
    EXPECT_EQ(truncated.rfind("{\"ok\":false", 0), 0u) << truncated;

    const std::string bad_model = service.handleLine(
        "{\"kind\": \"plan\", \"plan\": {\"model\": \"bogus\"}}");
    EXPECT_EQ(bad_model.rfind("{\"ok\":false", 0), 0u) << bad_model;
    EXPECT_NE(bad_model.find("service.plan.model"),
              std::string::npos)
        << bad_model;
    // Errors are not cached: the cache only ever holds "ok" lines.
    EXPECT_EQ(service.cache().stats().entries, 0);
}

TEST(ServiceErrors, ShutdownRequestSetsFlag)
{
    PlanService service;
    const std::string r =
        service.handleLine("{\"kind\": \"shutdown\"}");
    EXPECT_EQ(r.rfind("{\"ok\":true", 0), 0u) << r;
    EXPECT_TRUE(service.shutdownRequested());
}

// ---------------------------------------------------------------------------
// Replan

TEST(ServiceReplan, MatchesDirectReplanDegradedCall)
{
    const std::string fault =
        "{\"straggler_stage\": 0, \"straggler_factor\": 2.0}";
    PlanService service;
    const std::string response = service.handleLine(
        mediumRequestLine("replan", 2, fault));
    ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;

    const ParseResult<JsonValue> root =
        JsonValue::tryParse(response);
    ASSERT_TRUE(root.ok()) << root.error();
    const ParseResult<DegradedPlanDoc> doc = tryDegradedPlanFromJson(
        root.value().at("degraded_plan"));
    ASSERT_TRUE(doc.ok()) << doc.error();

    // The same replan, directly against the library (no memo).
    const ParseResult<ServiceRequest> request =
        tryServiceRequestFromJsonString(
            mediumRequestLine("replan", 2, fault));
    ASSERT_TRUE(request.ok()) << request.error();
    const PlanRequest &plan_req = request.value().plan;
    const ProfiledModel pm = buildProfiledModel(
        plan_req.modelConfig(), plan_req.train, plan_req.par,
        plan_req.clusterSpec());
    StageCostOptions opts;
    opts.memBudgetFraction = plan_req.memBudgetFraction;
    const ReplanResult direct =
        replanDegraded(pm, request.value().fault, opts);
    ASSERT_TRUE(direct.ok) << direct.reason;

    EXPECT_EQ(planToJsonString(doc.value().plan, 0),
              planToJsonString(direct.plan, 0));
    EXPECT_EQ(doc.value().degradedCapacity,
              direct.degradedCapacity);
}

TEST(ServiceReplan, RoundTripsProvenanceThroughReplanIo)
{
    const std::string fault =
        "{\"straggler_stage\": 1, \"straggler_factor\": 1.5, "
        "\"mem_factor\": 0.9}";
    PlanService service;

    // The healthy plan first, to know the expected provenance.
    const std::string plan_response =
        service.handleLine(mediumRequestLine("plan"));
    ASSERT_EQ(plan_response.rfind("{\"ok\":true", 0), 0u);
    const ParseResult<JsonValue> plan_root =
        JsonValue::tryParse(plan_response);
    ASSERT_TRUE(plan_root.ok());
    const ParseResult<PipelinePlan> base =
        tryPlanFromJson(plan_root.value().at("plan"));
    ASSERT_TRUE(base.ok()) << base.error();

    const std::string response = service.handleLine(
        mediumRequestLine("replan", 2, fault));
    ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
    const ParseResult<JsonValue> root =
        JsonValue::tryParse(response);
    ASSERT_TRUE(root.ok());
    const ParseResult<DegradedPlanDoc> doc = tryDegradedPlanFromJson(
        root.value().at("degraded_plan"));
    ASSERT_TRUE(doc.ok()) << doc.error();

    EXPECT_EQ(doc.value().originalFingerprint,
              planFingerprint(base.value()));
    EXPECT_EQ(doc.value().scenario.stragglerStage, 1);
    EXPECT_DOUBLE_EQ(doc.value().scenario.stragglerFactor, 1.5);
    EXPECT_DOUBLE_EQ(doc.value().scenario.memFactor, 0.9);

    // Serialize again and re-parse: provenance survives the
    // round-trip byte-for-byte.
    const ParseResult<DegradedPlanDoc> again =
        tryDegradedPlanFromJsonString(
            degradedPlanToJsonString(doc.value()));
    ASSERT_TRUE(again.ok()) << again.error();
    EXPECT_EQ(again.value().originalFingerprint,
              doc.value().originalFingerprint);
    EXPECT_EQ(planToJsonString(again.value().plan, 0),
              planToJsonString(doc.value().plan, 0));
}

// ---------------------------------------------------------------------------
// TCP server

TEST(PlanServerTcp, ConcurrentClientsGetByteIdenticalResponses)
{
    PlanServerOptions opts;
    opts.threads = 4;
    PlanServer server(opts);
    const ParseStatus started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();
    const int port = server.port();
    ASSERT_GT(port, 0);

    const std::string line = tinyRequestLine("plan");
    constexpr int kClients = 8;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            const ParseResult<std::string> r =
                serviceRequest("127.0.0.1", port, line);
            if (r.ok())
                responses[i] = r.value();
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (int i = 0; i < kClients; ++i) {
        ASSERT_FALSE(responses[i].empty()) << "client " << i;
        EXPECT_EQ(responses[i], responses[0]) << "client " << i;
    }
    EXPECT_EQ(responses[0].rfind("{\"ok\":true", 0), 0u)
        << responses[0];

    server.stop();
#if ADAPIPE_OBS_ENABLED
    // All service.* counters merged from the worker registries.
    EXPECT_GE(server.metrics().counter("service.requests"),
              kClients);
#endif
}

TEST(PlanServerTcp, OneConnectionServesManyRequestsThenShutdown)
{
    PlanServer server;
    ASSERT_TRUE(server.start().ok());

    PlanClient client;
    ASSERT_TRUE(
        client.connect("127.0.0.1", server.port()).ok());
    const ParseResult<std::string> plan =
        client.request(tinyRequestLine("plan"));
    ASSERT_TRUE(plan.ok()) << plan.error();
    EXPECT_EQ(plan.value().rfind("{\"ok\":true", 0), 0u);
    const ParseResult<std::string> explain =
        client.request(tinyRequestLine("explain"));
    ASSERT_TRUE(explain.ok()) << explain.error();
    const ParseResult<std::string> stats =
        client.request("{\"kind\": \"stats\"}");
    ASSERT_TRUE(stats.ok()) << stats.error();
    EXPECT_NE(stats.value().find("\"cache\""), std::string::npos)
        << stats.value();
    const ParseResult<std::string> shutdown =
        client.request("{\"kind\": \"shutdown\"}");
    ASSERT_TRUE(shutdown.ok()) << shutdown.error();
    client.close();

    server.wait(); // Returns once the shutdown request lands.
    EXPECT_TRUE(server.service().shutdownRequested());
}

} // namespace
} // namespace adapipe
