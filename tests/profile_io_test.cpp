/**
 * @file
 * Tests for profile-table serialization and the measured-profile
 * substitution path.
 */

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "hw/profile_io.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

ProfiledModel
smallProfiled()
{
    TrainConfig train;
    train.seqLen = 4096;
    train.globalBatch = 16;
    ParallelConfig par;
    par.tensor = 2;
    par.pipeline = 2;
    return buildProfiledModel(tinyTestModel(), train, par,
                              clusterA(1));
}

TEST(ProfileIo, RoundTripPreservesTable)
{
    const ProfiledModel pm = smallProfiled();
    const ProfileTable table = extractProfileTable(pm);
    const ProfileTable back = profileTableFromJsonString(
        profileTableToJsonString(table));

    EXPECT_EQ(back.source, table.source);
    ASSERT_EQ(back.layers.size(), table.layers.size());
    for (std::size_t l = 0; l < table.layers.size(); ++l) {
        ASSERT_EQ(back.layers[l].size(), table.layers[l].size());
        for (std::size_t u = 0; u < table.layers[l].size(); ++u) {
            const UnitProfile &a = table.layers[l][u];
            const UnitProfile &b = back.layers[l][u];
            EXPECT_EQ(b.name, a.name);
            EXPECT_EQ(b.kind, a.kind);
            EXPECT_DOUBLE_EQ(b.timeFwd, a.timeFwd);
            EXPECT_DOUBLE_EQ(b.timeBwd, a.timeBwd);
            EXPECT_EQ(b.memSaved, a.memSaved);
            EXPECT_EQ(b.alwaysSaved, a.alwaysSaved);
        }
    }
}

TEST(ProfileIo, AppliedTableChangesPlannedTimes)
{
    ProfiledModel pm = smallProfiled();
    const PlanResult before = makePlan(pm, PlanMethod::DappleFull);
    ASSERT_TRUE(before.ok);

    // A "measured" table that doubles every unit time.
    ProfileTable table = extractProfileTable(pm);
    table.source = "measured:test";
    for (auto &layer : table.layers) {
        for (auto &u : layer) {
            u.timeFwd *= 2;
            u.timeBwd *= 2;
        }
    }
    applyProfileTable(pm, table);
    const PlanResult after = makePlan(pm, PlanMethod::DappleFull);
    ASSERT_TRUE(after.ok);
    EXPECT_NEAR(after.plan.timing.total,
                2.0 * before.plan.timing.total,
                0.05 * after.plan.timing.total);
}

TEST(ProfileIo, ApplyRejectsStructureMismatch)
{
    ProfiledModel pm = smallProfiled();
    ProfileTable table = extractProfileTable(pm);
    table.layers.pop_back();
    EXPECT_DEATH(applyProfileTable(pm, table), "layers");

    ProfileTable renamed = extractProfileTable(pm);
    renamed.layers[1][0].name = "bogus";
    EXPECT_DEATH(applyProfileTable(pm, renamed), "name mismatch");
}

TEST(ProfileIo, ApplyMemoryChangesBaselineAccounting)
{
    ProfiledModel pm = smallProfiled();
    MemoryModel mm(pm.model, pm.train, pm.par, pm.optimizer);
    const Bytes before = mm.noRecomputeSavedPerMb(
        pm.rawLayers, 0, pm.numLayers() - 1);

    ProfileTable table = extractProfileTable(pm);
    for (auto &layer : table.layers) {
        for (auto &u : layer)
            u.memSaved *= 3;
    }
    applyProfileTable(pm, table);
    const Bytes after = mm.noRecomputeSavedPerMb(
        pm.rawLayers, 0, pm.numLayers() - 1);
    EXPECT_EQ(after, 3 * before);
}

TEST(ProfileIo, RejectsUnknownKind)
{
    const std::string bad = R"({
        "source": "x",
        "layers": [[{"name": "u", "kind": "teleport",
                     "time_fwd": 1.0, "time_bwd": 2.0,
                     "mem_saved": 10, "always_saved": false}]]
    })";
    EXPECT_DEATH(profileTableFromJsonString(bad), "unknown unit kind");
}

} // namespace
} // namespace adapipe
