/**
 * @file
 * Cross-module integration tests: planner output executed in the
 * simulator, end-to-end method comparisons, and agreement between
 * the cost model's prediction and the simulated iteration time.
 */

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"

namespace adapipe {
namespace {

class EndToEndTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_175b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(8);

    void
    SetUp() override
    {
        train.seqLen = 8192;
        train.globalBatch = 64;
        par.tensor = 8;
        par.pipeline = 8;
        par.data = 1;
    }

    ProfiledModel
    profiled() const
    {
        return buildProfiledModel(model, train, par, cluster);
    }
};

TEST_F(EndToEndTest, PlanSimulationMatchesCostModel)
{
    const ProfiledModel pm = profiled();
    for (PlanMethod m :
         {PlanMethod::AdaPipe, PlanMethod::EvenPartition,
          PlanMethod::DappleFull}) {
        const PlanResult r = makePlan(pm, m);
        ASSERT_TRUE(r.ok) << planMethodName(m);
        const EndToEndResult sim = simulatePlan(pm, r.plan);
        // The closed form is exact-or-lower vs the event sim, and
        // tight for the near-balanced plans the planner emits.
        EXPECT_LE(r.plan.timing.total, sim.iterationTime + 1e-9)
            << planMethodName(m);
        EXPECT_NEAR(r.plan.timing.total, sim.iterationTime,
                    0.03 * sim.iterationTime)
            << planMethodName(m);
    }
}

TEST_F(EndToEndTest, AdaPipeBeatsDappleFullEndToEnd)
{
    const ProfiledModel pm = profiled();
    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
    ASSERT_TRUE(ada.ok && full.ok);
    const Seconds t_ada = simulatePlan(pm, ada.plan).iterationTime;
    const Seconds t_full = simulatePlan(pm, full.plan).iterationTime;
    const double speedup = t_full / t_ada;
    // The paper reports up to 1.32x on cluster A; anything clearly
    // above 1 and below an implausible 2x is the right shape.
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 2.0);
}

TEST_F(EndToEndTest, DappleBaselineMatchesPlannerRoute)
{
    // evaluateBaseline(Dapple, full) and makePlan(DappleFull) are two
    // routes to the same configuration; their times must agree.
    const ProfiledModel pm = profiled();
    const PlanResult planned = makePlan(pm, PlanMethod::DappleFull);
    ASSERT_TRUE(planned.ok);
    const Seconds via_plan =
        simulatePlan(pm, planned.plan).iterationTime;
    const EndToEndResult via_baseline =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    ASSERT_TRUE(via_baseline.feasible);
    // evaluateBaseline adds p2p inside the simulator; the plan route
    // folds it into stage times. Small structural differences are
    // expected but bounded.
    EXPECT_NEAR(via_plan, via_baseline.iterationTime,
                0.05 * via_plan);
}

TEST_F(EndToEndTest, ChimeraMemoryExceedsDapple)
{
    // Fig. 8: Chimera duplicates parameters, so with full
    // recomputation it needs more memory than DAPPLE-Full.
    const ProfiledModel pm = profiled();
    const auto dapple =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    const auto chimera =
        evaluateBaseline(pm, BaselineSchedule::Chimera, true);
    ASSERT_FALSE(dapple.deviceMem.empty());
    ASSERT_FALSE(chimera.deviceMem.empty());
    Bytes dapple_max = 0;
    Bytes chimera_max = 0;
    for (Bytes b : dapple.deviceMem)
        dapple_max = std::max(dapple_max, b);
    for (Bytes b : chimera.deviceMem)
        chimera_max = std::max(chimera_max, b);
    EXPECT_GT(chimera_max, dapple_max);
}

TEST_F(EndToEndTest, GPipeNeedsMoreActivationMemoryThanDapple)
{
    const ProfiledModel pm = profiled();
    const auto dapple =
        evaluateBaseline(pm, BaselineSchedule::Dapple, true);
    const auto gpipe =
        evaluateBaseline(pm, BaselineSchedule::GPipe, true);
    // GPipe keeps all n micro-batches alive at every stage.
    const int n = pm.train.microBatches(pm.par);
    for (int d = 0; d < pm.par.pipeline; ++d) {
        EXPECT_EQ(gpipe.peakAlive[d], n);
        EXPECT_LE(dapple.peakAlive[d], pm.par.pipeline);
    }
}

TEST_F(EndToEndTest, LongerSequencesIncreaseAdaPipeAdvantage)
{
    // Sec. 7.2: AdaPipe's edge over DAPPLE-Full grows with sequence
    // length because unused memory shrinks.
    double prev_speedup = 1.0;
    for (int seq : {4096, 8192, 16384}) {
        TrainConfig t = train;
        t.seqLen = seq;
        t.globalBatch = 131072 / seq; // constant tokens/iteration
        const ProfiledModel pm =
            buildProfiledModel(model, t, par, cluster);
        const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
        const PlanResult full = makePlan(pm, PlanMethod::DappleFull);
        ASSERT_TRUE(ada.ok && full.ok) << "seq " << seq;
        const double speedup = full.plan.timing.total /
                               ada.plan.timing.total;
        EXPECT_GT(speedup, prev_speedup * 0.95) << "seq " << seq;
        prev_speedup = speedup;
    }
}

TEST_F(EndToEndTest, ClusterBHasTighterMemory)
{
    // 32 GB Ascend devices force recomputation where 80 GB A100s do
    // not: DAPPLE-Non OOMs on cluster B at seq 4096 (Sec. 7.2).
    ModelConfig llama = llama2_70b();
    TrainConfig t;
    t.seqLen = 4096;
    t.globalBatch = 256;
    ParallelConfig p;
    p.tensor = 4;
    p.pipeline = 8;
    p.data = 4;
    const ClusterSpec b = clusterB(16); // 128 NPUs

    const ProfiledModel pm = buildProfiledModel(llama, t, p, b);
    const PlanResult non = makePlan(pm, PlanMethod::DappleNon);
    EXPECT_FALSE(non.ok);
    const PlanResult ada = makePlan(pm, PlanMethod::AdaPipe);
    EXPECT_TRUE(ada.ok) << ada.oomReason;
}

} // namespace
} // namespace adapipe
