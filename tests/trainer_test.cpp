/**
 * @file
 * Tests for the tiny LM and its trainer: learning on the synthetic
 * bigram task and the Fig. 10 invariant (recomputation does not
 * change the loss trajectory).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/module.h"
#include "autograd/trainer.h"

namespace adapipe {
namespace {

TinyLmConfig
smallConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 2;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

TEST(TinyLM, LossStartsNearLogVocab)
{
    TinyLM model(smallConfig());
    std::vector<int> tokens;
    std::vector<int> targets;
    makeBigramBatch(32, 16, 0, 7, tokens, targets);
    const Variable loss = model.loss(tokens, targets, {});
    EXPECT_NEAR(loss.value()[0], std::log(32.0f), 0.5f);
}

TEST(TinyLM, LearnsTheBigramTask)
{
    TinyLM model(smallConfig());
    TrainOptions opts;
    opts.steps = 120;
    opts.seqLen = 24;
    opts.lr = 5e-3f;
    const TrainStats stats = trainTinyLM(model, opts);
    ASSERT_EQ(stats.losses.size(), 120u);
    const double first = stats.losses.front();
    double last_avg = 0;
    for (int i = 0; i < 10; ++i)
        last_avg += stats.losses[stats.losses.size() - 1 - i];
    last_avg /= 10;
    EXPECT_LT(last_avg, first * 0.5) << "model failed to learn";
}

TEST(TinyLM, ParamsCollected)
{
    TinyLM model(smallConfig());
    // token + pos tables, per block (2 LN affine pairs + 4 linear
    // pairs + 2 MLP pairs), final LN pair, head weight.
    const auto params = model.params();
    const std::size_t per_block = 2 + 2 + 4 * 2 + 2 * 2;
    EXPECT_EQ(params.size(), 2 + 2 * per_block + 2 + 1);
    for (const auto &p : params)
        EXPECT_TRUE(p.requiresGrad());
}

TEST(TrainerConvergence, RecomputationIsBitExact)
{
    // Paper Fig. 10: AdaPipe "only reduces the repeated computation
    // without changing the computation of each operator", so loss
    // curves coincide. Our engine makes this exact: full vs none vs
    // mixed recomputation produce bit-identical losses.
    TrainOptions base;
    base.steps = 30;
    base.seqLen = 16;
    base.lr = 5e-3f;

    auto run = [&](std::vector<BlockRecompute> modes) {
        TinyLM model(smallConfig()); // same seed -> same init
        TrainOptions opts = base;
        opts.recompute = std::move(modes);
        return trainTinyLM(model, opts).losses;
    };

    const auto none = run({BlockRecompute::None, BlockRecompute::None});
    const auto full = run({BlockRecompute::Full, BlockRecompute::Full});
    const auto mixed =
        run({BlockRecompute::Full, BlockRecompute::AttentionOnly});

    ASSERT_EQ(none.size(), full.size());
    for (std::size_t i = 0; i < none.size(); ++i) {
        EXPECT_EQ(none[i], full[i]) << "step " << i;
        EXPECT_EQ(none[i], mixed[i]) << "step " << i;
    }
}

TEST(TrainerConvergence, DifferentInitDiverges)
{
    // The paper attributes residual curve differences to different
    // parameter initialisation (partitioning changes init order).
    TrainOptions opts;
    opts.steps = 10;
    opts.seqLen = 16;

    TinyLmConfig cfg_a = smallConfig();
    TinyLmConfig cfg_b = smallConfig();
    cfg_b.seed = 43;
    TinyLM a(cfg_a);
    TinyLM b(cfg_b);
    const auto la = trainTinyLM(a, opts).losses;
    const auto lb = trainTinyLM(b, opts).losses;
    bool any_diff = false;
    for (std::size_t i = 0; i < la.size(); ++i)
        any_diff = any_diff || la[i] != lb[i];
    EXPECT_TRUE(any_diff);
}

TEST(TrainerConvergence, RecomputationSavesMemory)
{
    // Needs a deep-enough model: checkpointing trades one block's
    // transient recompute graph against all blocks' retained
    // activations, so savings only dominate past a few blocks
    // (paper Sec. 2.2 / Chen et al.'s O(sqrt(L)) argument).
    TinyLmConfig cfg = smallConfig();
    cfg.blocks = 6;
    cfg.dim = 32;
    cfg.ffnHidden = 128;

    TrainOptions opts;
    opts.steps = 3;
    opts.seqLen = 24;

    TinyLM plain(cfg);
    opts.recompute = {};
    const auto none = trainTinyLM(plain, opts);

    TinyLM ckpt(cfg);
    opts.recompute.assign(cfg.blocks, BlockRecompute::Full);
    const auto full = trainTinyLM(ckpt, opts);

    EXPECT_LT(full.peakActivationFloats, none.peakActivationFloats);

    // Attention-only checkpointing sits in between.
    TinyLM mid(cfg);
    opts.recompute.assign(cfg.blocks, BlockRecompute::AttentionOnly);
    const auto attn = trainTinyLM(mid, opts);
    EXPECT_LT(attn.peakActivationFloats, none.peakActivationFloats);
    EXPECT_GT(attn.peakActivationFloats, full.peakActivationFloats);
}

TEST(Trainer, BigramBatchDeterministic)
{
    std::vector<int> t1;
    std::vector<int> y1;
    std::vector<int> t2;
    std::vector<int> y2;
    makeBigramBatch(64, 32, 3, 7, t1, y1);
    makeBigramBatch(64, 32, 3, 7, t2, y2);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(y1, y2);
    // Different steps give different tokens but the same mapping.
    makeBigramBatch(64, 32, 4, 7, t2, y2);
    EXPECT_NE(t1, t2);
    for (std::size_t i = 0; i < t1.size(); ++i) {
        for (std::size_t j = 0; j < t2.size(); ++j) {
            if (t1[i] == t2[j])
                EXPECT_EQ(y1[i], y2[j]);
        }
    }
}

} // namespace
} // namespace adapipe
