/**
 * @file
 * Optimality oracle for Algorithm 1: exhaustively enumerate every
 * partition of small layer sequences and verify the DP finds the
 * minimum-cost one under the identical Sec. 5.1 cost model.
 */

#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "core/cost_model.h"
#include "core/partition_dp.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

/** Enumerate all ways to split [0, L) into p contiguous ranges. */
void
enumeratePartitions(
    int L, int p,
    const std::function<void(const std::vector<std::pair<int, int>> &)>
        &visit)
{
    std::vector<std::pair<int, int>> ranges;
    std::function<void(int, int)> rec = [&](int start, int stage) {
        if (stage == p - 1) {
            ranges.emplace_back(start, L - 1);
            visit(ranges);
            ranges.pop_back();
            return;
        }
        for (int end = start; end <= L - (p - stage); ++end) {
            ranges.emplace_back(start, end);
            rec(end + 1, stage + 1);
            ranges.pop_back();
        }
    };
    rec(0, 0);
}

class PartitionOracle
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(PartitionOracle, DpMatchesExhaustiveSearch)
{
    const auto [p, n, seq] = GetParam();

    ModelConfig model = tinyTestModel();
    model.numBlocks = 5; // L = 12 layers keeps enumeration small
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = n;
    ParallelConfig par;
    par.tensor = 2;
    par.pipeline = p;
    par.data = 1;
    ClusterSpec cluster = clusterA(1);
    // Tight memory so recomputation choices differ per candidate.
    cluster.device.memCapacity = MiB(512);
    cluster.device.reservedBytes = 0;

    const ProfiledModel pm =
        buildProfiledModel(model, train, par, cluster);
    const int L = pm.numLayers();

    StageCostCalculator calc(pm, p, n);
    const PartitionDpResult dp = solveAdaptivePartition(calc, L, p, n);

    // Oracle: evaluate every partition through the same stage costs
    // and closed-form timing.
    double best = std::numeric_limits<double>::infinity();
    std::vector<std::pair<int, int>> best_ranges;
    enumeratePartitions(
        L, p, [&](const std::vector<std::pair<int, int>> &ranges) {
            std::vector<StageTimes> times;
            for (int s = 0; s < p; ++s) {
                const StageCost &c =
                    calc.cost(s, ranges[s].first, ranges[s].second);
                if (!c.feasible)
                    return;
                times.push_back({c.fwd, c.bwd});
            }
            const PipelineTiming t = evaluate1F1B(times, n);
            if (t.total < best) {
                best = t.total;
                best_ranges = ranges;
            }
        });

    if (best == std::numeric_limits<double>::infinity()) {
        EXPECT_FALSE(dp.feasible);
        return;
    }
    ASSERT_TRUE(dp.feasible)
        << "oracle found a partition the DP missed";
    EXPECT_NEAR(dp.timing.total, best, 1e-9 * best)
        << "p=" << p << " n=" << n << " seq=" << seq;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionOracle,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(512, 1024, 2048)));

} // namespace
} // namespace adapipe
