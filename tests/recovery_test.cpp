/**
 * @file
 * Tests for the fault-tolerant runtime: timeout-capable channels,
 * seeded runtime fault injection, watchdog stall detection,
 * training-state snapshots and replan-and-resume recovery.
 *
 * The load-bearing claims: (1) a fixed fault seed fires the same
 * injected-fault sequence at any intra-stage-thread count, (2) a
 * snapshot/restore cycle is bit-exact — the resumed run's losses
 * equal the uninterrupted run's, on any stage partition — and (3) a
 * crashed run recovered onto fewer stages finishes with the exact
 * loss trajectory of a run that never crashed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "autograd/trainer.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "robust/replan_io.h"
#include "runtime/channel.h"
#include "runtime/fault_injector.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "runtime/recovery.h"
#include "runtime/snapshot.h"
#include "util/file_io.h"

namespace adapipe {
namespace {

TinyLmConfig
smallConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 6;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

RuntimeOptions
smallOpts()
{
    RuntimeOptions opts;
    opts.steps = 3;
    opts.seqLen = 12;
    opts.microBatches = 4;
    opts.lr = 4e-3f;
    opts.dataSeed = 7;
    return opts;
}

/** Single-threaded reference over the identical data stream. */
std::vector<double>
referenceLosses(const TinyLmConfig &cfg, const RuntimeOptions &opts,
                const std::vector<StageSpec> &specs)
{
    TinyLM model(cfg);
    TrainOptions ref;
    ref.steps = opts.steps;
    ref.seqLen = opts.seqLen;
    ref.lr = opts.lr;
    ref.useAdam = opts.useAdam;
    ref.dataSeed = opts.dataSeed;
    ref.microBatches = opts.microBatches;
    for (const StageSpec &spec : specs)
        ref.recompute.insert(ref.recompute.end(),
                             spec.recompute.begin(),
                             spec.recompute.end());
    return trainTinyLM(model, ref).losses;
}

/** Fresh per-test file path under the gtest temp dir. */
std::string
tmpPath(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

/** Profiled model matching the tiny LM, for replanning. */
ProfiledModel
profileTinyLm(const TinyLmConfig &cfg, int p, int n)
{
    TrainConfig train;
    train.seqLen = 12;
    train.microBatch = 1;
    train.globalBatch = n;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = p;
    par.data = 1;
    return buildProfiledModel(tinyLmModelConfig(cfg), train, par,
                              clusterA(1));
}

TEST(ChannelTimeout, RecvTimesOutThenDelivers)
{
    BoundedChannel<int> chan(2);
    int got = 0;
    double waited_us = 0;
    EXPECT_EQ(chan.tryRecvFor(got,
                              std::chrono::microseconds(2000),
                              &waited_us),
              ChannelStatus::TimedOut);
    EXPECT_GT(waited_us, 0.0);
    chan.send(9);
    EXPECT_EQ(chan.tryRecvFor(got,
                              std::chrono::microseconds(2000),
                              &waited_us),
              ChannelStatus::Ok);
    EXPECT_EQ(got, 9);
}

TEST(ChannelTimeout, SendTimesOutOnFullChannel)
{
    BoundedChannel<int> chan(1);
    chan.send(1);
    int item = 2;
    EXPECT_EQ(chan.trySendFor(item,
                              std::chrono::microseconds(2000)),
              ChannelStatus::TimedOut);
    EXPECT_EQ(chan.recv(), 1);
    EXPECT_EQ(chan.trySendFor(item,
                              std::chrono::microseconds(2000)),
              ChannelStatus::Ok);
    EXPECT_EQ(chan.recv(), 2);
}

TEST(ChannelTimeout, ClosedChannelDrainsThenReportsClosed)
{
    BoundedChannel<int> chan(2);
    chan.send(5);
    chan.close();
    int got = 0;
    // Queued items still come out after close ...
    EXPECT_EQ(chan.tryRecvFor(got, std::chrono::microseconds(1000)),
              ChannelStatus::Ok);
    EXPECT_EQ(got, 5);
    // ... and only then does the shutdown surface, without blocking
    // for the timeout.
    EXPECT_EQ(chan.tryRecvFor(got, std::chrono::microseconds(1000)),
              ChannelStatus::Closed);
    int item = 6;
    EXPECT_EQ(chan.trySendFor(item,
                              std::chrono::microseconds(1000)),
              ChannelStatus::Closed);
}

TEST(RuntimeFaultSpec, JsonRoundTrip)
{
    RuntimeFaultSpec spec;
    spec.seed = 99;
    spec.slowdowns.push_back({1, 2.5});
    spec.stalls.probability = 0.25;
    spec.stalls.base = 1e-4;
    spec.stalls.maxRetries = 2;
    spec.sendDelayUs = 150;
    spec.sendDelayJitter = 0.5;
    spec.crash.worker = 1;
    spec.crash.step = 3;
    spec.crash.afterOps = 2;
    spec.crash.hang = true;

    const std::string text =
        runtimeFaultSpecToJson(spec).dump(2);
    const auto parsed = tryRuntimeFaultSpecFromJsonString(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    const RuntimeFaultSpec &back = parsed.value();
    EXPECT_EQ(back.seed, spec.seed);
    ASSERT_EQ(back.slowdowns.size(), 1u);
    EXPECT_EQ(back.slowdowns[0].device, 1);
    EXPECT_EQ(back.slowdowns[0].factor, 2.5);
    EXPECT_EQ(back.stalls.probability, 0.25);
    EXPECT_EQ(back.stalls.base, 1e-4);
    EXPECT_EQ(back.stalls.maxRetries, 2);
    EXPECT_EQ(back.sendDelayUs, 150);
    EXPECT_EQ(back.sendDelayJitter, 0.5);
    EXPECT_EQ(back.crash.worker, 1);
    EXPECT_EQ(back.crash.step, 3);
    EXPECT_EQ(back.crash.afterOps, 2);
    EXPECT_TRUE(back.crash.hang);
    EXPECT_FALSE(back.empty());
    EXPECT_TRUE(RuntimeFaultSpec{}.empty());
}

TEST(FaultInjection, ThrowCrashKillsTheNamedWorker)
{
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions base = smallOpts();
    RuntimeFaultSpec faults;
    faults.crash.worker = 1;
    faults.crash.step = 1;
    faults.crash.afterOps = 2;
    RuntimeOptions opts = base;
    opts.faults = &faults;
    const auto specs =
        evenStageSpecs(cfg.blocks, 3, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_EQ(run.failureKind, RuntimeFailureKind::WorkerError);
    EXPECT_EQ(run.failedWorker, 1);
    EXPECT_NE(run.error.find("injected crash"), std::string::npos)
        << run.error;
    ASSERT_EQ(run.faultEvents.size(), 1u);
    EXPECT_EQ(run.faultEvents[0].kind, FaultEventKind::Crash);
    EXPECT_EQ(run.faultEvents[0].worker, 1);
    EXPECT_EQ(run.faultEvents[0].step, 1);
}

/**
 * The injection-determinism contract: a fixed seed produces the
 * identical fault firing sequence (same kinds, same schedule
 * coordinates, same deterministic delays) at any intra-stage-thread
 * count, and injected faults never change a single loss bit — they
 * only cost wall clock.
 */
TEST(FaultInjection, DeterministicAcrossThreadsAndChunks)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions base = smallOpts();
    base.steps = 2;
    RuntimeFaultSpec faults;
    faults.seed = 11;
    faults.slowdowns.push_back({1, 1.05});
    faults.stalls.probability = 0.3;
    faults.stalls.base = 2e-4;
    faults.stalls.maxRetries = 2;
    faults.sendDelayUs = 100;
    faults.sendDelayJitter = 0.5;

    for (const int v : {1, 2}) {
        const int p = 2;
        const auto specs =
            evenStageSpecs(cfg.blocks, v * p, BlockRecompute::None);
        const auto ref = referenceLosses(cfg, base, specs);
        std::vector<std::vector<std::string>> signatures;
        for (const int threads : {1, 4}) {
            RuntimeOptions opts = base;
            opts.virtualStages = v;
            opts.intraStageThreads = threads;
            opts.faults = &faults;
            TinyLM model(cfg);
            const RuntimeResult run =
                runPipeline(model, specs, opts);
            ASSERT_TRUE(run.ok) << run.error;
            EXPECT_EQ(run.losses, ref)
                << "v=" << v << " threads=" << threads;
            EXPECT_FALSE(run.faultEvents.empty());
            std::vector<std::string> sigs;
            for (const FaultEvent &event : run.faultEvents)
                sigs.push_back(faultEventSignature(event));
            signatures.push_back(std::move(sigs));
        }
        EXPECT_EQ(signatures[0], signatures[1]) << "v=" << v;
    }
}

TEST(Watchdog, DetectsASilentlyHungWorker)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeFaultSpec faults;
    faults.crash.worker = 1;
    faults.crash.step = 1;
    faults.crash.afterOps = 1;
    faults.crash.hang = true;
    RuntimeOptions opts = smallOpts();
    opts.faults = &faults;
    opts.watchdog.enabled = true;
    opts.watchdog.stallTimeoutUs = 2e5;
    opts.watchdog.pollIntervalUs = 1e4;
    const auto specs =
        evenStageSpecs(cfg.blocks, 3, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_EQ(run.failureKind, RuntimeFailureKind::WatchdogStall);
    EXPECT_EQ(run.failedWorker, 1);
    EXPECT_NE(run.error.find("watchdog"), std::string::npos)
        << run.error;
    EXPECT_GT(run.detectSeconds, 0.0);
}

TEST(Watchdog, HangCrashWithoutWatchdogIsRefused)
{
    // Without the watchdog nothing could ever unblock a silent hang,
    // so the runtime must refuse the configuration up front instead
    // of deadlocking.
    const TinyLmConfig cfg = smallConfig();
    RuntimeFaultSpec faults;
    faults.crash.worker = 0;
    faults.crash.step = 0;
    faults.crash.hang = true;
    RuntimeOptions opts = smallOpts();
    opts.faults = &faults;
    const auto specs =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_EQ(run.failureKind, RuntimeFailureKind::None);
    EXPECT_NE(run.error.find("watchdog"), std::string::npos)
        << run.error;
}

TEST(Snapshot, BytesRoundTripBitExact)
{
    const TinyLmConfig cfg = smallConfig();
    const std::string path = tmpPath("snap_roundtrip.bin");
    RuntimeOptions opts = smallOpts();
    opts.snapshot.every = opts.steps;
    opts.snapshot.path = path;
    const auto specs =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    ASSERT_TRUE(run.ok) << run.error;

    const auto loaded = loadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    const TrainingSnapshot &snap = loaded.value();
    EXPECT_EQ(snap.version, 1);
    EXPECT_EQ(snap.step, opts.steps);
    EXPECT_EQ(snap.dataSeed, opts.dataSeed);
    EXPECT_EQ(snap.optimizer, "adam");
    EXPECT_EQ(snap.adamT, opts.steps);
    EXPECT_EQ(snap.config.dim, cfg.dim);
    EXPECT_EQ(snap.config.blocks, cfg.blocks);

    // The snapshot holds the post-run parameters bit-for-bit.
    const auto params = model.params();
    ASSERT_EQ(snap.params.size(), params.size());
    ASSERT_EQ(snap.adamM.size(), params.size());
    ASSERT_EQ(snap.adamV.size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        const Tensor &have = params[i].value();
        ASSERT_EQ(snap.params[i].numel(), have.numel());
        for (std::int64_t j = 0; j < have.numel(); ++j)
            ASSERT_EQ(snap.params[i][j], have[j]) << i;
    }

    // A serialize/parse cycle preserves every byte of state.
    const auto again = snapshotFromBytes(snapshotToBytes(snap));
    ASSERT_TRUE(again.ok()) << again.error();
    EXPECT_EQ(snapshotToBytes(again.value()),
              snapshotToBytes(snap));

    // Crash consistency: the tmp staging file never survives.
    EXPECT_FALSE(readTextFile(path + ".tmp").ok());
    std::remove(path.c_str());
}

/**
 * The tentpole bit-exactness claim, part 1: splitting a training job
 * at a snapshot boundary — run k steps, snapshot, restore into a
 * *fresh* process-equivalent model, run the rest — reproduces the
 * uninterrupted run's losses bit-for-bit, at p in {2, 4} times
 * recompute in {none, full}.
 */
TEST(Snapshot, RestoreResumesBitExact)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions full_opts = smallOpts();
    full_opts.steps = 6;

    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        for (const int p : {2, 4}) {
            const auto specs =
                evenStageSpecs(cfg.blocks, p, mode);
            const auto ref =
                referenceLosses(cfg, full_opts, specs);

            const std::string path = tmpPath("snap_resume.bin");
            RuntimeOptions first = full_opts;
            first.steps = 4;
            first.snapshot.every = 2;
            first.snapshot.path = path;
            TinyLM model(cfg);
            const RuntimeResult head =
                runPipeline(model, specs, first);
            ASSERT_TRUE(head.ok) << head.error;

            const auto loaded = loadSnapshotFile(path);
            ASSERT_TRUE(loaded.ok()) << loaded.error();
            const TrainingSnapshot &snap = loaded.value();
            ASSERT_EQ(snap.step, 4);

            TinyLM resumed(cfg);
            ASSERT_TRUE(restoreTinyLM(resumed, snap).ok());
            RuntimeOptions rest = full_opts;
            rest.firstStep = static_cast<int>(snap.step);
            rest.steps = full_opts.steps - rest.firstStep;
            rest.restore = &snap;
            const RuntimeResult tail =
                runPipeline(resumed, specs, rest);
            ASSERT_TRUE(tail.ok) << tail.error;

            ASSERT_EQ(head.losses.size() + tail.losses.size(),
                      ref.size());
            for (std::size_t i = 0; i < head.losses.size(); ++i) {
                EXPECT_EQ(head.losses[i], ref[i])
                    << "p=" << p << " mode="
                    << static_cast<int>(mode) << " step " << i;
            }
            for (std::size_t i = 0; i < tail.losses.size(); ++i) {
                EXPECT_EQ(tail.losses[i], ref[4 + i])
                    << "p=" << p << " mode="
                    << static_cast<int>(mode) << " step "
                    << (4 + i);
            }
            std::remove(path.c_str());
        }
    }
}

TEST(Snapshot, RestoreRejectsMismatchedConfig)
{
    TinyLmConfig cfg = smallConfig();
    TinyLM model(cfg);
    const TrainingSnapshot snap = captureTrainingSnapshot(
        model, {}, 0, 7, /*use_adam=*/false);
    TinyLmConfig other = cfg;
    other.dim = 32;
    TinyLM wrong(other);
    const ParseStatus applied = restoreTinyLM(wrong, snap);
    ASSERT_FALSE(applied.ok());
    EXPECT_NE(applied.error().find("dim"), std::string::npos)
        << applied.error();
}

/**
 * The tentpole end-to-end: a worker silently dies at iteration 3 of
 * 6; the watchdog detects it, recovery replans the job onto one
 * fewer stage, restores the step-2 snapshot and resumes — and the
 * stitched loss curve is bit-identical to a run that never crashed.
 */
TEST(Recovery, CrashReplanResumeBitExact)
{
    const TinyLmConfig cfg = smallConfig();
    const int p = 4;
    const auto specs =
        evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
    RuntimeOptions opts = smallOpts();
    opts.steps = 6;
    const auto ref = referenceLosses(cfg, opts, specs);

    RuntimeFaultSpec faults;
    faults.crash.worker = 1;
    faults.crash.step = 3;
    faults.crash.afterOps = 2;
    faults.crash.hang = true;
    opts.faults = &faults;
    opts.watchdog.enabled = true;
    opts.watchdog.stallTimeoutUs = 3e5;
    opts.watchdog.pollIntervalUs = 2e4;
    const std::string snap_path = tmpPath("recover_snap.bin");
    opts.snapshot.every = 2;
    opts.snapshot.path = snap_path;

    const ProfiledModel pm = profileTinyLm(cfg, p, 4);
    const PlanResult original =
        makePlan(pm, PlanMethod::AdaPipe, {});
    ASSERT_TRUE(original.ok);

    RecoveryOptions rec;
    rec.replanOnFault = true;
    rec.pm = &pm;
    rec.originalPlan = &original.plan;
    rec.degradedPlanOut = tmpPath("recover_plan.json");

    TinyLM model(cfg);
    obs::Registry metrics;
    const RecoveryResult res = runPipelineWithRecovery(
        model, specs, opts, rec, &metrics);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.attempts.size(), 1u);
    const RecoveryAttempt &attempt = res.attempts[0];
    EXPECT_EQ(attempt.kind, RuntimeFailureKind::WatchdogStall);
    EXPECT_EQ(attempt.failedWorker, 1);
    EXPECT_TRUE(attempt.restoredFromSnapshot);
    EXPECT_EQ(attempt.resumedFromStep, 2);
    EXPECT_GT(attempt.detectSeconds, 0.0);
    EXPECT_EQ(attempt.newStages, p - 1);
    EXPECT_EQ(res.finalStages, p - 1);

    // The recovered job's losses match the never-crashed run
    // bit-for-bit.
    ASSERT_EQ(res.losses.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(res.losses[i], ref[i]) << "step " << i;

    EXPECT_EQ(metrics.counter("recovery.detections"), 1);
    EXPECT_EQ(metrics.counter("recovery.resumes"), 1);

    // The degraded plan was persisted with provenance and round
    // trips through the plan-io layer.
    const auto doc = loadDegradedPlanFile(rec.degradedPlanOut);
    ASSERT_TRUE(doc.ok()) << doc.error();
    EXPECT_EQ(doc.value().scenario.lostStages, 1);
    EXPECT_EQ(doc.value().originalFingerprint,
              planFingerprint(original.plan));
    EXPECT_EQ(static_cast<int>(doc.value().plan.stages.size()),
              p - 1);
    std::remove(snap_path.c_str());
    std::remove(rec.degradedPlanOut.c_str());
}

TEST(Recovery, CrashBeforeFirstSnapshotRestartsFresh)
{
    // The fault hits before any snapshot boundary: recovery falls
    // back to a fresh restart from step 0 on the degraded partition
    // — still bit-exact, because the trajectory is partition-
    // independent.
    const TinyLmConfig cfg = smallConfig();
    const int p = 3;
    const auto specs =
        evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
    RuntimeOptions opts = smallOpts();
    opts.steps = 4;
    const auto ref = referenceLosses(cfg, opts, specs);

    RuntimeFaultSpec faults;
    faults.crash.worker = 0;
    faults.crash.step = 0;
    faults.crash.afterOps = 1;
    opts.faults = &faults;
    const std::string snap_path = tmpPath("fresh_restart.bin");
    opts.snapshot.every = 8; // never due within the job
    opts.snapshot.path = snap_path;

    const ProfiledModel pm = profileTinyLm(cfg, p, 4);
    RecoveryOptions rec;
    rec.replanOnFault = true;
    rec.pm = &pm;

    TinyLM model(cfg);
    const RecoveryResult res =
        runPipelineWithRecovery(model, specs, opts, rec);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].kind,
              RuntimeFailureKind::WorkerError);
    EXPECT_FALSE(res.attempts[0].restoredFromSnapshot);
    EXPECT_EQ(res.attempts[0].resumedFromStep, 0);
    EXPECT_EQ(res.finalStages, p - 1);
    ASSERT_EQ(res.losses.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(res.losses[i], ref[i]) << "step " << i;
}

TEST(Recovery, CorruptSnapshotIsAHardStop)
{
    const TinyLmConfig cfg = smallConfig();
    const int p = 2;
    const auto specs =
        evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
    RuntimeOptions opts = smallOpts();
    opts.steps = 4;
    RuntimeFaultSpec faults;
    faults.crash.worker = 0;
    faults.crash.step = 3;
    faults.crash.afterOps = 0;
    opts.faults = &faults;
    const std::string snap_path = tmpPath("corrupt_snap.bin");
    // The crash fires *before* step 3's snapshot barrier, so the
    // recovering run never overwrites the damaged file itself.
    opts.snapshot.every = 4;
    opts.snapshot.path = snap_path;

    const ProfiledModel pm = profileTinyLm(cfg, p, 4);
    RecoveryOptions rec;
    rec.replanOnFault = true;
    rec.pm = &pm;

    // Corrupt the snapshot between the write and the recovery read:
    // run once without recovery to produce the file, truncate it,
    // then run the recovering job against the damaged file.
    {
        TinyLM model(cfg);
        RuntimeOptions clean = opts;
        clean.faults = nullptr;
        ASSERT_TRUE(runPipeline(model, specs, clean).ok);
    }
    const auto bytes = readTextFile(snap_path);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(writeTextFile(snap_path,
                              bytes.value().substr(
                                  0, bytes.value().size() / 2))
                    .ok());

    TinyLM model(cfg);
    const RecoveryResult res =
        runPipelineWithRecovery(model, specs, opts, rec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("corrupt"), std::string::npos)
        << res.error;
    std::remove(snap_path.c_str());
}

} // namespace
} // namespace adapipe
