/**
 * @file
 * Bit-equality tests for the blocked/fused matmul kernels against
 * the naive reference loops, plus regression tests for the tensor
 * buffer pool (checkpoint replays must recycle buffers instead of
 * hitting the heap every iteration).
 *
 * The references below ARE the pre-optimization loops, verbatim:
 * same loop nesting, same exact-zero skips, same summation order.
 * Every comparison is EXPECT_EQ on floats — bit equality, not
 * tolerance — because the pipeline runtime's determinism contract
 * is bit-exact losses.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "autograd/checkpoint.h"
#include "autograd/module.h"
#include "autograd/ops.h"
#include "autograd/tensor_pool.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace adapipe {
namespace {

/** Naive C = A . B with the exact-zero skip. */
Tensor
naiveMatmul(const Tensor &av, const Tensor &bv)
{
    const int m = av.rows();
    const int k = av.cols();
    const int n = bv.cols();
    Tensor out({m, n});
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float aik = av.at(i, kk);
            if (aik == 0.0f)
                continue;
            for (int j = 0; j < n; ++j)
                out.at(i, j) += aik * bv.at(kk, j);
        }
    }
    return out;
}

/** Naive dA = g . B^T, column-striding B like the original loop. */
Tensor
naiveBackwardA(const Tensor &g, const Tensor &bv)
{
    const int m = g.rows();
    const int n = g.cols();
    const int k = bv.rows();
    Tensor da({m, k});
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            const float gij = g.at(i, j);
            if (gij == 0.0f)
                continue;
            for (int kk = 0; kk < k; ++kk)
                da.at(i, kk) += gij * bv.at(kk, j);
        }
    }
    return da;
}

/** Naive dB = A^T . g. */
Tensor
naiveBackwardB(const Tensor &av, const Tensor &g)
{
    const int m = av.rows();
    const int k = av.cols();
    const int n = g.cols();
    Tensor db({k, n});
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float aik = av.at(i, kk);
            if (aik == 0.0f)
                continue;
            for (int j = 0; j < n; ++j)
                db.at(kk, j) += aik * g.at(i, j);
        }
    }
    return db;
}

void
expectBitIdentical(const Tensor &got, const Tensor &want)
{
    ASSERT_TRUE(got.sameShape(want));
    for (std::int64_t i = 0; i < got.numel(); ++i)
        EXPECT_EQ(got[i], want[i]) << "element " << i;
}

/**
 * Odd, non-tile-aligned shapes: 1-element edges, sizes straddling
 * the 32/128 tile boundaries, and skinny matrices in both
 * orientations.
 */
struct Shape
{
    int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {17, 13, 9},   {31, 32, 33},
    {32, 64, 1}, {1, 129, 64}, {33, 127, 131}, {64, 2, 150},
};

/** Random tensor with exact zeros planted to exercise the skips. */
Tensor
randnWithZeros(std::vector<int> shape, Rng &rng)
{
    Tensor t = Tensor::randn(shape, rng);
    for (std::int64_t i = 0; i < t.numel(); i += 5)
        t[i] = 0.0f;
    return t;
}

TEST(KernelEquivalence, MatmulForwardMatchesNaive)
{
    for (std::uint64_t seed : {1u, 99u}) {
        Rng rng(seed);
        for (const Shape &s : kShapes) {
            const Tensor a = randnWithZeros({s.m, s.k}, rng);
            const Tensor b = randnWithZeros({s.k, s.n}, rng);
            NoGradGuard no_grad;
            const Variable out =
                ops::matmul(Variable(a), Variable(b));
            expectBitIdentical(out.value(), naiveMatmul(a, b));
        }
    }
}

TEST(KernelEquivalence, MatmulBackwardMatchesNaive)
{
    for (std::uint64_t seed : {2u, 77u}) {
        Rng rng(seed);
        for (const Shape &s : kShapes) {
            Variable a(randnWithZeros({s.m, s.k}, rng), true);
            Variable b(randnWithZeros({s.k, s.n}, rng), true);
            Variable out = ops::matmul(a, b);
            const Tensor g = randnWithZeros({s.m, s.n}, rng);
            a.zeroGrad();
            b.zeroGrad();
            out.backward(g);
            expectBitIdentical(a.grad(), naiveBackwardA(g, b.value()));
            expectBitIdentical(b.grad(), naiveBackwardB(a.value(), g));
        }
    }
}

TEST(KernelEquivalence, LinearBiasMatchesUnfusedGraph)
{
    Rng rng(3);
    for (const Shape &s : kShapes) {
        Variable x1(randnWithZeros({s.m, s.k}, rng), true);
        Variable w1(randnWithZeros({s.k, s.n}, rng), true);
        Variable b1(Tensor::randn({s.n}, rng), true);
        Variable x2 = x1.detach(true);
        Variable w2 = w1.detach(true);
        Variable b2 = b1.detach(true);

        Variable fused = ops::linearBias(x1, w1, b1);
        Variable unfused = ops::addBias(ops::matmul(x2, w2), b2);
        expectBitIdentical(fused.value(), unfused.value());

        const Tensor g = randnWithZeros({s.m, s.n}, rng);
        fused.backward(g);
        unfused.backward(g);
        expectBitIdentical(x1.grad(), x2.grad());
        expectBitIdentical(w1.grad(), w2.grad());
        expectBitIdentical(b1.grad(), b2.grad());
    }
}

TEST(KernelEquivalence, LinearBiasGeluMatchesUnfusedGraph)
{
    Rng rng(4);
    for (const Shape &s : kShapes) {
        Variable x1(randnWithZeros({s.m, s.k}, rng), true);
        Variable w1(randnWithZeros({s.k, s.n}, rng), true);
        Variable b1(Tensor::randn({s.n}, rng), true);
        Variable x2 = x1.detach(true);
        Variable w2 = w1.detach(true);
        Variable b2 = b1.detach(true);

        Variable fused = ops::linearBiasGelu(x1, w1, b1);
        Variable unfused =
            ops::gelu(ops::addBias(ops::matmul(x2, w2), b2));
        expectBitIdentical(fused.value(), unfused.value());

        const Tensor g = randnWithZeros({s.m, s.n}, rng);
        fused.backward(g);
        unfused.backward(g);
        expectBitIdentical(x1.grad(), x2.grad());
        expectBitIdentical(w1.grad(), w2.grad());
        expectBitIdentical(b1.grad(), b2.grad());
    }
}

TEST(TensorPoolTest, RecyclesSameSizeBuffers)
{
    TensorPool &pool = TensorPool::instance();
    const TensorPool::Stats before = pool.stats();
    {
        Tensor t({61, 3}); // odd size, unlikely pre-pooled
    }
    {
        Tensor t({61, 3}); // must come back from the freelist
    }
    const TensorPool::Stats after = pool.stats();
    EXPECT_GE(after.reuses, before.reuses + 1);
    EXPECT_GE(after.releases, before.releases + 2);
}

TEST(TensorPoolTest, CheckpointReplayStopsAllocatingAfterWarmup)
{
    Rng rng(123);
    Linear up(16, 24, rng);
    Linear down(24, 16, rng);
    const Segment segment = [&](const Variable &v) {
        return down.forward(up.forwardGelu(v));
    };

    TensorPool &pool = TensorPool::instance();
    std::int64_t after_warmup = 0;
    const int iters = 10;
    const int warmup = 3;
    for (int iter = 0; iter < iters; ++iter) {
        for (Variable &p : up.params())
            p.zeroGrad();
        for (Variable &p : down.params())
            p.zeroGrad();
        Variable x(Tensor::randn({8, 16}, rng));
        Variable y = checkpoint(segment, x);
        y.backward(Tensor::full(y.value().shape(), 1.0f));
        if (iter + 1 == warmup)
            after_warmup = pool.stats().heapAllocs;
    }
    // Identical shapes every iteration (forward, replay and
    // gradients alike): once the freelists are primed, the heap
    // allocation counter must be flat.
    EXPECT_EQ(pool.stats().heapAllocs, after_warmup);
}

TEST(TensorPoolTest, ShortLivedThreadsStopAllocatingAfterWarmup)
{
    // Regression: a dying thread's cache flush used to obey the
    // global per-bucket cap, silently freeing the overflow — so
    // every generation of short-lived worker threads (the backward
    // engine spins helpers up and down per pipeline run) re-heap-
    // allocated what its predecessor had cached, and heap_bytes grew
    // without bound. The exit flush is now uncapped: after one
    // warmup generation the pool must serve every later generation
    // entirely from the freelist.
    //
    // 72 live buffers of one unusual size: 8 land in the thread
    // cache, 64 fill the global bucket to its steady-state cap, so
    // the exit flush must carry the cached 8 past the cap for later
    // generations to run allocation-free.
    constexpr int kBuffers = 72;
    const std::vector<int> shape = {103, 1}; // unlikely pre-pooled

    TensorPool &pool = TensorPool::instance();
    auto generation = [&shape]() {
        std::thread worker([&shape]() {
            std::vector<Tensor> live;
            live.reserve(kBuffers);
            for (int i = 0; i < kBuffers; ++i)
                live.emplace_back(shape);
        });
        worker.join();
    };

    for (int warm = 0; warm < 2; ++warm)
        generation();
    const TensorPool::Stats after_warmup = pool.stats();
    for (int gen = 0; gen < 5; ++gen)
        generation();
    const TensorPool::Stats after = pool.stats();
    EXPECT_EQ(after.heapBytes, after_warmup.heapBytes);
    EXPECT_EQ(after.heapAllocs, after_warmup.heapAllocs);
}

} // namespace
} // namespace adapipe
