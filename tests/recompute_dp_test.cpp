/**
 * @file
 * Tests for the adaptive-recomputation knapsack (Sec. 4.3),
 * including a brute-force optimality oracle and property sweeps.
 */

#include <gtest/gtest.h>

#include "core/recompute_dp.h"
#include "util/rng.h"

namespace adapipe {
namespace {

UnitProfile
unit(const std::string &name, Seconds time_f, Bytes mem,
     bool always_saved = false)
{
    UnitProfile u;
    u.name = name;
    u.timeFwd = time_f;
    u.timeBwd = 2 * time_f;
    u.memSaved = mem;
    u.alwaysSaved = always_saved;
    return u;
}

TEST(RecomputeDp, EmptyBudgetSavesOnlyAlwaysSaved)
{
    std::vector<UnitProfile> units{
        unit("a", 1.0, 100), unit("b", 2.0, 100),
        unit("out", 0.5, 50, true)};
    const auto r = solveRecomputeKnapsack(units, 0);
    EXPECT_FALSE(r.saved[0]);
    EXPECT_FALSE(r.saved[1]);
    EXPECT_TRUE(r.saved[2]);
    EXPECT_EQ(r.savedUnits, 1);
    EXPECT_EQ(r.savedBytes, 0u);
    EXPECT_DOUBLE_EQ(r.savedFwdTime, 0.0);
}

TEST(RecomputeDp, NegativeBudgetTreatedAsZero)
{
    std::vector<UnitProfile> units{unit("a", 1.0, 100)};
    const auto r = solveRecomputeKnapsack(units, -1000);
    EXPECT_FALSE(r.saved[0]);
}

TEST(RecomputeDp, UnlimitedBudgetSavesEverything)
{
    std::vector<UnitProfile> units{
        unit("a", 1.0, 100), unit("b", 2.0, 200),
        unit("out", 0.5, 50, true)};
    const auto r = solveRecomputeKnapsack(units, 1 << 20);
    EXPECT_TRUE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
    EXPECT_TRUE(r.saved[2]);
    EXPECT_EQ(r.savedUnits, 3);
    EXPECT_EQ(r.savedBytes, 300u);
    EXPECT_DOUBLE_EQ(r.savedFwdTime, 3.0);
}

TEST(RecomputeDp, PicksDenserUnit)
{
    // Budget fits exactly one of the two; unit b saves more forward
    // time for the same memory.
    std::vector<UnitProfile> units{unit("a", 1.0, 128),
                                   unit("b", 3.0, 128)};
    const auto r = solveRecomputeKnapsack(units, 128);
    EXPECT_FALSE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
    EXPECT_DOUBLE_EQ(r.savedFwdTime, 3.0);
}

TEST(RecomputeDp, ClassicKnapsackInstance)
{
    // Items: (value, weight) = (6,1), (10,2), (12,3); budget 5 ->
    // optimal {10, 12}.
    std::vector<UnitProfile> units{unit("a", 6.0, 1), unit("b", 10.0, 2),
                                   unit("c", 12.0, 3)};
    RecomputeDpOptions opts;
    opts.useGcd = false;
    const auto r = solveRecomputeKnapsack(units, 5, opts);
    EXPECT_FALSE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
    EXPECT_TRUE(r.saved[2]);
    EXPECT_DOUBLE_EQ(r.savedFwdTime, 22.0);
}

TEST(RecomputeDp, AlwaysSavedDoesNotConsumeBudget)
{
    std::vector<UnitProfile> units{
        unit("out", 0.5, 1 << 20, true), unit("a", 1.0, 64)};
    const auto r = solveRecomputeKnapsack(units, 64);
    EXPECT_TRUE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
}

TEST(RecomputeDp, GcdQuantisationIsExactForPowerOfTwoSizes)
{
    // All sizes share a 4 KiB GCD; the quantised DP must match the
    // exact brute force.
    Rng rng(11);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 12; ++i) {
        units.push_back(unit("u" + std::to_string(i),
                             rng.uniform(0.5, 4.0),
                             4096 * rng.uniformInt(1, 16)));
    }
    const std::int64_t budget = 4096 * 40;
    const auto dp = solveRecomputeKnapsack(units, budget);
    const auto bf = bruteForceRecompute(units, budget);
    EXPECT_NEAR(dp.savedFwdTime, bf.savedFwdTime, 1e-9);
    EXPECT_LE(dp.savedBytes, static_cast<Bytes>(budget));
}

/**
 * Property: for random instances, the DP never exceeds the budget
 * and matches the brute-force optimum whenever quantisation is
 * lossless (power-of-two sizes).
 */
class RecomputeDpProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RecomputeDpProperty, MatchesBruteForce)
{
    Rng rng(GetParam());
    std::vector<UnitProfile> units;
    const int n = 4 + GetParam() % 12;
    for (int i = 0; i < n; ++i) {
        const bool always = rng.uniform() < 0.15;
        units.push_back(unit("u" + std::to_string(i),
                             rng.uniform(0.1, 5.0),
                             1024 * rng.uniformInt(1, 32), always));
    }
    const std::int64_t budget = 1024 * rng.uniformInt(0, 200);
    const auto dp = solveRecomputeKnapsack(units, budget);
    const auto bf = bruteForceRecompute(units, budget);
    EXPECT_NEAR(dp.savedFwdTime, bf.savedFwdTime, 1e-9)
        << "seed " << GetParam();
    EXPECT_LE(dp.savedBytes, static_cast<Bytes>(budget));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecomputeDpProperty,
                         ::testing::Range(1, 25));

/**
 * Property: the saved forward time is monotone in the budget.
 */
class BudgetMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(BudgetMonotonicity, MoreMemoryNeverHurts)
{
    Rng rng(1000 + GetParam());
    std::vector<UnitProfile> units;
    for (int i = 0; i < 20; ++i) {
        units.push_back(unit("u" + std::to_string(i),
                             rng.uniform(0.1, 5.0),
                             512 * rng.uniformInt(1, 64)));
    }
    Seconds prev = -1.0;
    for (std::int64_t budget = 0; budget <= 512 * 400;
         budget += 512 * 40) {
        const auto r = solveRecomputeKnapsack(units, budget);
        EXPECT_GE(r.savedFwdTime, prev);
        prev = r.savedFwdTime;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetMonotonicity,
                         ::testing::Range(1, 9));

TEST(RecomputeDp, QuantisationStaysFeasibleOnOddSizes)
{
    // Adversarially odd sizes exercise the bucket clamp; the result
    // must stay within budget even if slightly sub-optimal.
    Rng rng(5);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 64; ++i) {
        units.push_back(unit("u" + std::to_string(i),
                             rng.uniform(0.1, 2.0),
                             static_cast<Bytes>(
                                 rng.uniformInt(1, 1 << 22)) |
                                 1));
    }
    RecomputeDpOptions opts;
    opts.maxBuckets = 256;
    const std::int64_t budget = 1 << 23;
    const auto r = solveRecomputeKnapsack(units, budget, opts);
    EXPECT_LE(r.savedBytes, static_cast<Bytes>(budget));
    EXPECT_GT(r.savedUnits, 0);
}

} // namespace
} // namespace adapipe
