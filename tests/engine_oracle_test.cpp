/**
 * @file
 * Randomized-graph oracle for the parallel backward engine: ~100
 * seeded random autograd DAGs, each differentiated once by the
 * single-threaded reference (Variable::backward) and once per worker
 * count by BackwardEngine, with every leaf gradient compared with
 * EXPECT_EQ on floats — bit equality, not tolerance.
 *
 * The generator deliberately manufactures the structures that break
 * naive parallel reductions: shared subexpressions (every node stays
 * eligible as an operand forever, so fan-out grows with graph size),
 * diamond joins (two consumers of one node later merged by a binary
 * op), nodes consumed twice by the SAME op (add(x, x), matmul(x, x)
 * — the same-parent-multi-slot case), fused linearBias /
 * linearBiasGelu nodes (slot-parallel backward), and leaves that are
 * never consumed at all (their grad must stay unallocated, exactly
 * like the reference leaves it).
 *
 * Graphs are rebuilt from the seed for every run: gradients
 * accumulate in place, so a fresh graph per run is what makes the
 * comparison exact rather than cumulative.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace adapipe {
namespace {

constexpr int kDim = 6;       // every matrix node is [kDim, kDim]
constexpr int kOpSteps = 14;  // random interior nodes per graph
constexpr int kNumGraphs = 100;
const int kThreadCounts[] = {1, 2, 4, 8};

/** One rebuildable random DAG: leaves to check plus the root. */
struct RandomGraph
{
    /** Every grad-requiring leaf, consumed or not, fixed order. */
    std::vector<Variable> leaves;
    Variable root;
    Tensor seed;
};

/**
 * Deterministic graph from @p seed. Identical seeds produce
 * bit-identical values, topology and backward seed, so runs are
 * comparable across engines.
 */
RandomGraph
buildGraph(std::uint64_t seed)
{
    Rng rng(seed);
    RandomGraph g;

    // Matrix leaves feed the op pool; vector leaves serve as biases
    // and norm gains. One of each is created but never consumed.
    std::vector<Variable> pool;
    for (int i = 0; i < 4; ++i) {
        Variable leaf(Tensor::randn({kDim, kDim}, rng, 0.5f), true);
        g.leaves.push_back(leaf);
        pool.push_back(leaf);
    }
    std::vector<Variable> vecs;
    for (int i = 0; i < 2; ++i) {
        Variable leaf(Tensor::randn({kDim}, rng, 0.5f), true);
        g.leaves.push_back(leaf);
        vecs.push_back(leaf);
    }
    g.leaves.emplace_back(Tensor::randn({kDim, kDim}, rng, 0.5f),
                          true); // unused matrix leaf
    g.leaves.emplace_back(Tensor::randn({kDim}, rng, 0.5f),
                          true); // unused vector leaf

    auto pick = [&]() -> Variable & {
        return pool[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) -
                                  1))];
    };
    auto pickVec = [&]() -> Variable & {
        return vecs[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(vecs.size()) -
                                  1))];
    };

    for (int step = 0; step < kOpSteps; ++step) {
        Variable out;
        switch (rng.uniformInt(0, 10)) {
          case 0: out = ops::add(pick(), pick()); break;
          case 1: out = ops::mul(pick(), pick()); break;
          case 2: out = ops::matmul(pick(), pick()); break;
          case 3: {
            // Same node in both slots, on purpose: the reduction
            // must apply slot 0's addend before slot 1's.
            Variable &a = pick();
            out = rng.uniform() < 0.5 ? ops::add(a, a)
                                      : ops::matmul(a, a);
            break;
          }
          case 4: out = ops::gelu(pick()); break;
          case 5: out = ops::silu(pick()); break;
          case 6:
            out = ops::scale(
                pick(), static_cast<float>(rng.uniform(0.5, 1.5)));
            break;
          case 7:
            out = ops::linearBias(pick(), pick(), pickVec());
            break;
          case 8:
            out = ops::linearBiasGelu(pick(), pick(), pickVec());
            break;
          case 9: out = ops::rmsNorm(pick(), pickVec()); break;
          default:
            out = ops::softmaxRows(pick(), rng.uniform() < 0.5);
            break;
        }
        pool.push_back(std::move(out));
    }

    // Fold the whole pool into one root so every node (diamond arms
    // included) is reachable, adding one more consumer per node.
    Variable root = pool[0];
    for (std::size_t i = 1; i < pool.size(); ++i)
        root = ops::add(root, pool[i]);
    g.root = std::move(root);
    g.seed = Tensor::randn(g.root.value().shape(), rng);
    return g;
}

/** Snapshot of one leaf's gradient after a backward run. */
struct GradSnapshot
{
    bool allocated = false;
    std::vector<float> bits;
};

std::vector<GradSnapshot>
snapshotGrads(const RandomGraph &g)
{
    std::vector<GradSnapshot> out;
    out.reserve(g.leaves.size());
    for (const Variable &leaf : g.leaves) {
        GradSnapshot s;
        s.allocated = leaf.grad().numel() > 0;
        if (s.allocated)
            s.bits = leaf.grad().data();
        out.push_back(std::move(s));
    }
    return out;
}

void
expectSameGrads(const std::vector<GradSnapshot> &got,
                const std::vector<GradSnapshot> &want,
                const std::string &label)
{
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].allocated, want[i].allocated)
            << label << " leaf " << i;
        ASSERT_EQ(got[i].bits.size(), want[i].bits.size())
            << label << " leaf " << i;
        for (std::size_t j = 0; j < got[i].bits.size(); ++j) {
            ASSERT_EQ(got[i].bits[j], want[i].bits[j])
                << label << " leaf " << i << " element " << j;
        }
    }
}

TEST(EngineOracle, RandomDagsBitIdenticalAcrossThreadCounts)
{
    for (int gi = 0; gi < kNumGraphs; ++gi) {
        const std::uint64_t seed = 1000 + 17 * gi;

        RandomGraph ref = buildGraph(seed);
        ref.root.backward(ref.seed);
        const std::vector<GradSnapshot> want = snapshotGrads(ref);

        for (const int threads : kThreadCounts) {
            RandomGraph run = buildGraph(seed);
            BackwardEngine engine(EngineOptions{threads});
            engine.run(run.root, run.seed);
            expectSameGrads(snapshotGrads(run), want,
                            "graph " + std::to_string(gi) +
                                " threads " +
                                std::to_string(threads));
        }
    }
}

TEST(EngineOracle, UnusedLeavesStayUnallocated)
{
    // A leaf no consumer reaches must keep its grad unallocated under
    // every engine — allocation itself is observable (zeroGrad-free
    // optimizers skip unallocated grads).
    RandomGraph g = buildGraph(4242);
    BackwardEngine engine(EngineOptions{4});
    engine.run(g.root, g.seed);
    const Variable &unused_matrix = g.leaves[g.leaves.size() - 2];
    const Variable &unused_vector = g.leaves[g.leaves.size() - 1];
    EXPECT_EQ(unused_matrix.grad().numel(), 0);
    EXPECT_EQ(unused_vector.grad().numel(), 0);
}

TEST(EngineOracle, RepeatedRunsAccumulateLikeReference)
{
    // Micro-batch accumulation: two backward passes through the same
    // graph must add up to the same bits in either engine.
    const std::uint64_t seed = 9001;
    RandomGraph ref = buildGraph(seed);
    ref.root.backward(ref.seed);
    ref.root.backward(ref.seed);
    const std::vector<GradSnapshot> want = snapshotGrads(ref);

    RandomGraph run = buildGraph(seed);
    BackwardEngine engine(EngineOptions{4});
    engine.run(run.root, run.seed);
    engine.run(run.root, run.seed);
    expectSameGrads(snapshotGrads(run), want, "double run");
}

} // namespace
} // namespace adapipe
