/**
 * @file
 * Unit tests for the util module.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace adapipe {
namespace {

TEST(Units, ByteHelpers)
{
    EXPECT_EQ(KiB(1), 1024u);
    EXPECT_EQ(MiB(1), 1024u * 1024u);
    EXPECT_EQ(GiB(80), 80ull * 1024 * 1024 * 1024);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(GiB(80), 0), "80 GiB");
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(MiB(1.5)), "1.5 MiB");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(1.5), "1.50 s");
    EXPECT_EQ(formatSeconds(milliseconds(12.3), 1), "12.3 ms");
    EXPECT_EQ(formatSeconds(microseconds(4), 0), "4 us");
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "method"});
    t.addRow({"1", "AdaPipe"});
    t.addRow({"22", "x"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("| a  | method  |"), std::string::npos);
    EXPECT_NE(s.find("| 22 | x       |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PadsShortRows)
{
    Table t({"a", "b"});
    t.addRow({"only"});
    EXPECT_NE(t.toString().find("| only | "), std::string::npos);
}

TEST(Csv, QuotesSpecialCharacters)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows)
{
    std::ostringstream oss;
    CsvWriter csv(oss, {"x", "y"});
    csv.writeRow({"1", "2"});
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
    EXPECT_EQ(csv.rowCount(), 1u);
}

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(99);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Stats, RunningStatsBasics)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, Quantile)
{
    std::vector<double> v{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Stats, QuantileFiltersNaN)
{
    // NaN breaks operator<'s strict weak ordering, so a sort over
    // mixed samples used to return unspecified percentiles. NaNs
    // must be dropped and the finite samples ranked as usual.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> v{nan, 4.0, 1.0, nan, 3.0, 2.0, nan};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
    // A single finite sample among NaNs is every percentile.
    EXPECT_DOUBLE_EQ(quantile({nan, 7.0}, 0.25), 7.0);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace adapipe
