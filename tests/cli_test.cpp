/**
 * @file
 * Tests for the CLI flag parser.
 */

#include <gtest/gtest.h>

#include "util/cli.h"

namespace adapipe {
namespace {

CliParser
makeParser()
{
    CliParser cli("test");
    cli.addString("name", "default", "a string");
    cli.addInt("count", 7, "an int");
    cli.addFlag("verbose", "a switch");
    return cli;
}

void
parseArgs(CliParser &cli, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply)
{
    CliParser cli = makeParser();
    parseArgs(cli, {});
    EXPECT_EQ(cli.getString("name"), "default");
    EXPECT_EQ(cli.getInt("count"), 7);
    EXPECT_FALSE(cli.getFlag("verbose"));
}

TEST(Cli, SpaceSeparatedValues)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"--name", "adapipe", "--count", "42"});
    EXPECT_EQ(cli.getString("name"), "adapipe");
    EXPECT_EQ(cli.getInt("count"), 42);
}

TEST(Cli, EqualsSeparatedValues)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"--name=x", "--count=-3", "--verbose"});
    EXPECT_EQ(cli.getString("name"), "x");
    EXPECT_EQ(cli.getInt("count"), -3);
    EXPECT_TRUE(cli.getFlag("verbose"));
}

TEST(Cli, PositionalArgumentsCollected)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"one", "--count", "1", "two"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "one");
    EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, UnknownFlagIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--bogus", "1"}), "unknown flag");
}

TEST(Cli, MissingValueIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--count"}), "needs a value");
}

TEST(Cli, NonNumericIntIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--count", "abc"}),
                 "needs an integer");
}

TEST(Cli, WrongTypeAccessPanics)
{
    CliParser cli = makeParser();
    parseArgs(cli, {});
    EXPECT_DEATH(cli.getInt("name"), "wrong type");
    EXPECT_DEATH(cli.getString("missing"), "undeclared flag");
}

TEST(Cli, UsageListsAllOptions)
{
    CliParser cli = makeParser();
    const std::string usage = cli.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

} // namespace
} // namespace adapipe
