/**
 * @file
 * Tests for the CLI flag parser, plus subprocess tests that run the
 * real example binaries against bad input and check for a clean
 * nonzero exit with a one-line diagnostic (no abort, no stack trace).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <utility>
#include <vector>

#include "util/cli.h"

namespace adapipe {
namespace {

CliParser
makeParser()
{
    CliParser cli("test");
    cli.addString("name", "default", "a string");
    cli.addInt("count", 7, "an int");
    cli.addFlag("verbose", "a switch");
    return cli;
}

void
parseArgs(CliParser &cli, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply)
{
    CliParser cli = makeParser();
    parseArgs(cli, {});
    EXPECT_EQ(cli.getString("name"), "default");
    EXPECT_EQ(cli.getInt("count"), 7);
    EXPECT_FALSE(cli.getFlag("verbose"));
}

TEST(Cli, SpaceSeparatedValues)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"--name", "adapipe", "--count", "42"});
    EXPECT_EQ(cli.getString("name"), "adapipe");
    EXPECT_EQ(cli.getInt("count"), 42);
}

TEST(Cli, EqualsSeparatedValues)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"--name=x", "--count=-3", "--verbose"});
    EXPECT_EQ(cli.getString("name"), "x");
    EXPECT_EQ(cli.getInt("count"), -3);
    EXPECT_TRUE(cli.getFlag("verbose"));
}

TEST(Cli, PositionalArgumentsCollected)
{
    CliParser cli = makeParser();
    parseArgs(cli, {"one", "--count", "1", "two"});
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "one");
    EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, UnknownFlagIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--bogus", "1"}), "unknown flag");
}

TEST(Cli, MissingValueIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--count"}), "needs a value");
}

TEST(Cli, NonNumericIntIsFatal)
{
    CliParser cli = makeParser();
    EXPECT_DEATH(parseArgs(cli, {"--count", "abc"}),
                 "needs an integer");
}

TEST(Cli, WrongTypeAccessPanics)
{
    CliParser cli = makeParser();
    parseArgs(cli, {});
    EXPECT_DEATH(cli.getInt("name"), "wrong type");
    EXPECT_DEATH(cli.getString("missing"), "undeclared flag");
}

TEST(Cli, UsageListsAllOptions)
{
    CliParser cli = makeParser();
    const std::string usage = cli.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

#if defined(ADAPIPE_QUICKSTART_BIN) && defined(ADAPIPE_EXPORT_PLAN_BIN)

struct RunResult
{
    int exitCode = -1;
    std::string output; // stdout + stderr interleaved
};

/** Run a shell command (redirections pre-applied by the caller). */
RunResult
runRedirected(const std::string &command)
{
    RunResult result;
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe)
        return result;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        result.output.append(buf, n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    return result;
}

/** Run a shell command, capturing combined output and exit code. */
RunResult
runCommand(const std::string &command)
{
    return runRedirected(command + " 2>&1");
}

/** Run a shell command, capturing stdout only. */
RunResult
runCommandStdout(const std::string &command)
{
    return runRedirected(command + " 2>/dev/null");
}

/** Run a shell command, capturing stderr only. */
RunResult
runCommandStderr(const std::string &command)
{
    return runRedirected(command + " 2>&1 1>/dev/null");
}

/** Write @p content to a file under the test temp dir. */
std::string
writeTempFile(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(CliProcess, QuickstartReportsMissingProfileFile)
{
    const RunResult r = runCommand(
        std::string(ADAPIPE_QUICKSTART_BIN) +
        " --profile /no/such/dir/profile.json");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("quickstart: error:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("/no/such/dir/profile.json"),
              std::string::npos)
        << r.output;
}

TEST(CliProcess, ExportPlanReportsMalformedProfileField)
{
    const std::string path = writeTempFile(
        "cli_test_bad_profile.json",
        R"({"source": 42, "layers": []})");
    const RunResult r = runCommand(
        std::string(ADAPIPE_EXPORT_PLAN_BIN) +
        " --model gpt3-13b --nodes 1 --tensor 4 --pipeline 1"
        " --data 1 --seq 4096 --profile " + path);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("export_plan: error:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("profile.source"), std::string::npos)
        << r.output;
}

TEST(CliProcess, ExportPlanReportsTruncatedProfileJson)
{
    const std::string path = writeTempFile(
        "cli_test_truncated_profile.json", R"({"source": "x", )");
    const RunResult r = runCommand(
        std::string(ADAPIPE_EXPORT_PLAN_BIN) +
        " --model gpt3-13b --nodes 1 --tensor 4 --pipeline 1"
        " --data 1 --seq 4096 --profile " + path);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("export_plan: error:"), std::string::npos)
        << r.output;
}

TEST(CliProcess, ExportPlanRejectsUnknownModel)
{
    const RunResult r = runCommand(
        std::string(ADAPIPE_EXPORT_PLAN_BIN) + " --model bogus");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown model 'bogus'"),
              std::string::npos)
        << r.output;
}

TEST(CliProcess, UnknownFlagExitsWithUsage)
{
    const RunResult r = runCommand(
        std::string(ADAPIPE_EXPORT_PLAN_BIN) + " --bogus 1");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown flag"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

/**
 * The usage contract every binary honours: --help prints usage to
 * stdout (nothing to stderr) and exits 0; a bad command line prints
 * to stderr (nothing to stdout) and exits 1.
 */
std::vector<std::pair<std::string, std::string>>
usageBinaries()
{
    // (binary, bad command line) pairs. CliParser binaries reject an
    // unknown flag; positional-argument binaries reject a wrong
    // argument count.
    std::vector<std::pair<std::string, std::string>> bins = {
        {ADAPIPE_QUICKSTART_BIN, "--bogus 1"},
        {ADAPIPE_EXPORT_PLAN_BIN, "--bogus 1"},
    };
#ifdef ADAPIPE_PIPELINE_TRAINING_BIN
    bins.emplace_back(ADAPIPE_PIPELINE_TRAINING_BIN, "--bogus 1");
#endif
#ifdef ADAPIPE_PLAN_SERVER_BIN
    bins.emplace_back(ADAPIPE_PLAN_SERVER_BIN, "--bogus 1");
#endif
#ifdef ADAPIPE_PLAN_CLIENT_BIN
    bins.emplace_back(ADAPIPE_PLAN_CLIENT_BIN, "--bogus 1");
#endif
#ifdef ADAPIPE_EXPLAIN_PLAN_BIN
    bins.emplace_back(ADAPIPE_EXPLAIN_PLAN_BIN, "");
#endif
#ifdef ADAPIPE_SCHEDULE_EXPLORER_BIN
    bins.emplace_back(ADAPIPE_SCHEDULE_EXPLORER_BIN,
                      "one two three four five");
#endif
    return bins;
}

TEST(CliUsage, HelpGoesToStdoutAndExitsZero)
{
    for (const auto &[bin, unused] : usageBinaries()) {
        (void)unused;
        const RunResult out = runCommandStdout(bin + " --help");
        EXPECT_EQ(out.exitCode, 0) << bin;
        EXPECT_NE(out.output.find("usage"), std::string::npos)
            << bin << ": " << out.output;
        const RunResult err = runCommandStderr(bin + " --help");
        EXPECT_EQ(err.exitCode, 0) << bin;
        EXPECT_TRUE(err.output.empty())
            << bin << " wrote to stderr: " << err.output;
    }
}

TEST(CliUsage, BadCommandLinesGoToStderrAndExitOne)
{
    for (const auto &[bin, bad] : usageBinaries()) {
        const RunResult err = runCommandStderr(bin + " " + bad);
        EXPECT_EQ(err.exitCode, 1) << bin;
        EXPECT_FALSE(err.output.empty())
            << bin << " wrote nothing to stderr";
        const RunResult out = runCommandStdout(bin + " " + bad);
        EXPECT_EQ(out.exitCode, 1) << bin;
        EXPECT_TRUE(out.output.empty())
            << bin << " wrote to stdout: " << out.output;
    }
}

#ifdef ADAPIPE_PIPELINE_TRAINING_BIN

const char *const kThrowCrashSpec = R"({
  "seed": 5,
  "slowdowns": [],
  "stalls": {"probability": 0.0, "base": 0.0, "max_retries": 0},
  "send_delay": {"us": 0.0, "jitter": 0.0},
  "crash": {"worker": 1, "step": 2, "after_ops": 1, "hang": false}
})";

const char *const kHangCrashSpec = R"({
  "seed": 5,
  "slowdowns": [],
  "stalls": {"probability": 0.0, "base": 0.0, "max_retries": 0},
  "send_delay": {"us": 0.0, "jitter": 0.0},
  "crash": {"worker": 1, "step": 2, "after_ops": 1, "hang": true}
})";

/** Common tiny-run arguments keeping the subprocess fast. */
std::string
trainingArgs()
{
    return " --stages 3 --steps 4 --recompute none --quiet";
}

/** Extract the "final loss <value> after" token from CLI output. */
std::string
finalLossToken(const std::string &output)
{
    const std::string key = "final loss ";
    const std::size_t pos = output.find(key);
    if (pos == std::string::npos)
        return "";
    const std::size_t end = output.find(" after", pos);
    if (end == std::string::npos)
        return "";
    return output.substr(pos + key.size(),
                         end - pos - key.size());
}

TEST(CliProcess, PipelineTrainingFailsNonzeroNamingTheWorker)
{
    const std::string spec = writeTempFile(
        "cli_test_throw_crash.json", kThrowCrashSpec);
    const RunResult r = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --fault-spec " + spec);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("runtime failed"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("worker 1"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("injected crash"), std::string::npos)
        << r.output;
}

TEST(CliProcess, PipelineTrainingRejectsMalformedFaultSpec)
{
    const std::string spec = writeTempFile(
        "cli_test_bad_fault.json",
        R"({"seed": 1, "slowdowns": [{"worker": -3, "factor": 2}]})");
    const RunResult r = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --fault-spec " + spec);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("pipeline_training: error:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("runtime_fault.slowdowns[0].worker"),
              std::string::npos)
        << r.output;
}

TEST(CliProcess, PipelineTrainingRecoversFromAHungWorker)
{
    // Reference: the same job without any fault.
    const RunResult clean = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs());
    ASSERT_EQ(clean.exitCode, 0) << clean.output;
    const std::string want = finalLossToken(clean.output);
    ASSERT_FALSE(want.empty()) << clean.output;

    const std::string spec = writeTempFile(
        "cli_test_hang_crash.json", kHangCrashSpec);
    const std::string snap =
        ::testing::TempDir() + "cli_test_recover_snap.bin";
    std::remove(snap.c_str());
    const RunResult r = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --fault-spec " + spec +
        " --stall-timeout-ms 300 --snapshot-every 2"
        " --snapshot-path " + snap + " --recover");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("recovery: worker 1"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("replanned onto 2 stages"),
              std::string::npos)
        << r.output;
    // Recovery must not change a single bit of the final loss.
    EXPECT_EQ(finalLossToken(r.output), want) << r.output;
    std::remove(snap.c_str());
}

TEST(CliProcess, PipelineTrainingResumesFromASnapshot)
{
    const RunResult clean = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs());
    ASSERT_EQ(clean.exitCode, 0) << clean.output;
    const std::string want = finalLossToken(clean.output);

    const std::string spec = writeTempFile(
        "cli_test_kill_crash.json", kThrowCrashSpec);
    const std::string snap =
        ::testing::TempDir() + "cli_test_resume_snap.bin";
    std::remove(snap.c_str());
    // Killed run leaves a snapshot behind ...
    const RunResult killed = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --fault-spec " + spec +
        " --snapshot-every 2 --snapshot-path " + snap);
    EXPECT_EQ(killed.exitCode, 1) << killed.output;
    // ... and the restarted process finishes the job bit-exactly.
    const RunResult resumed = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --resume-from " + snap);
    EXPECT_EQ(resumed.exitCode, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("resumed from"),
              std::string::npos)
        << resumed.output;
    EXPECT_EQ(finalLossToken(resumed.output), want)
        << resumed.output;
    std::remove(snap.c_str());
}

TEST(CliProcess, PipelineTrainingRejectsMismatchedResumeSeed)
{
    const std::string spec = writeTempFile(
        "cli_test_kill_crash2.json", kThrowCrashSpec);
    const std::string snap =
        ::testing::TempDir() + "cli_test_seed_snap.bin";
    std::remove(snap.c_str());
    const RunResult killed = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --fault-spec " + spec +
        " --snapshot-every 2 --snapshot-path " + snap);
    EXPECT_EQ(killed.exitCode, 1) << killed.output;
    const RunResult r = runCommand(
        std::string(ADAPIPE_PIPELINE_TRAINING_BIN) +
        trainingArgs() + " --resume-from " + snap +
        " --data-seed 9");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("data-seed"), std::string::npos)
        << r.output;
    std::remove(snap.c_str());
}

#endif // ADAPIPE_PIPELINE_TRAINING_BIN

#endif // ADAPIPE_QUICKSTART_BIN && ADAPIPE_EXPORT_PLAN_BIN

} // namespace
} // namespace adapipe
