/**
 * @file
 * Optimality oracle for the Sec. 4.3 recomputation knapsack:
 * exhaustively enumerate every save-subset of small unit sets (all
 * 2^U of them, independently of the library's bruteForceRecompute)
 * and verify the DP matches the best feasible one exactly — value,
 * budget feasibility and tie-breaking invariants.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/recompute_dp.h"
#include "util/rng.h"

namespace adapipe {
namespace {

UnitProfile
unit(Seconds time_f, Bytes mem, bool always_saved = false)
{
    UnitProfile u;
    u.timeFwd = time_f;
    u.timeBwd = 2 * time_f;
    u.memSaved = mem;
    u.alwaysSaved = always_saved;
    return u;
}

/** The exhaustive optimum over all 2^U save-subsets. */
struct OracleResult
{
    Seconds bestValue = -1;
    Bytes bestBytes = 0;
    bool feasibleExists = false;
};

OracleResult
enumerateSaveSubsets(const std::vector<UnitProfile> &units,
                     std::int64_t budget)
{
    const std::size_t n = units.size();
    EXPECT_LE(n, 20u) << "oracle is exponential, keep instances small";
    OracleResult oracle;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        Seconds value = 0;
        std::int64_t bytes = 0;
        bool valid = true;
        for (std::size_t i = 0; i < n; ++i) {
            const bool take = (mask >> i) & 1u;
            if (units[i].alwaysSaved) {
                // Always-saved units sit outside the knapsack: every
                // candidate subset must include them at zero cost.
                if (!take)
                    valid = false;
                continue;
            }
            if (take) {
                value += units[i].timeFwd;
                bytes += static_cast<std::int64_t>(units[i].memSaved);
            }
        }
        if (!valid || bytes > std::max<std::int64_t>(budget, 0))
            continue;
        oracle.feasibleExists = true;
        if (value > oracle.bestValue) {
            oracle.bestValue = value;
            oracle.bestBytes = static_cast<Bytes>(bytes);
        }
    }
    return oracle;
}

/** Re-derive the DP result's value/bytes from its saved[] vector. */
void
checkSelfConsistent(const std::vector<UnitProfile> &units,
                    const RecomputePlanResult &r)
{
    ASSERT_EQ(r.saved.size(), units.size());
    Seconds value = 0;
    Bytes bytes = 0;
    int count = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].alwaysSaved) {
            EXPECT_TRUE(r.saved[i]) << "unit " << i;
        }
        if (!r.saved[i])
            continue;
        ++count;
        if (units[i].alwaysSaved)
            continue;
        value += units[i].timeFwd;
        bytes += units[i].memSaved;
    }
    EXPECT_NEAR(r.savedFwdTime, value, 1e-12);
    EXPECT_EQ(r.savedBytes, bytes);
    EXPECT_EQ(r.savedUnits, count);
}

/**
 * Parameter: RNG seed. Each seed builds a random instance with
 * power-of-two unit sizes (so GCD quantisation is lossless and the
 * DP must be *exactly* optimal), a random mix of always-saved units
 * and a random budget including the 0 and everything-fits edges.
 */
class RecomputeOracle : public ::testing::TestWithParam<int>
{};

TEST_P(RecomputeOracle, DpMatchesExhaustiveSubsetEnumeration)
{
    Rng rng(GetParam());
    const int n = 3 + GetParam() % 10;
    std::vector<UnitProfile> units;
    std::int64_t total = 0;
    for (int i = 0; i < n; ++i) {
        const bool always = rng.uniform() < 0.2;
        const Bytes mem = static_cast<Bytes>(256)
                          << rng.uniformInt(0, 6);
        units.push_back(unit(rng.uniform(0.05, 4.0), mem, always));
        if (!always)
            total += static_cast<std::int64_t>(mem);
    }

    // Budgets: empty, partial (random fractions), exactly-full and
    // overflowing.
    std::vector<std::int64_t> budgets{0, total, total + 123};
    for (int b = 0; b < 4; ++b)
        budgets.push_back(256 * rng.uniformInt(0, static_cast<int>(
                                                      total / 256)));

    for (const std::int64_t budget : budgets) {
        const OracleResult oracle =
            enumerateSaveSubsets(units, budget);
        const RecomputePlanResult dp =
            solveRecomputeKnapsack(units, budget);

        checkSelfConsistent(units, dp);
        ASSERT_TRUE(oracle.feasibleExists)
            << "all-recompute is always feasible";
        EXPECT_NEAR(dp.savedFwdTime, oracle.bestValue, 1e-9)
            << "seed " << GetParam() << " budget " << budget;
        EXPECT_LE(dp.savedBytes,
                  static_cast<Bytes>(std::max<std::int64_t>(budget, 0)))
            << "seed " << GetParam() << " budget " << budget;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecomputeOracle,
                         ::testing::Range(1, 41));

TEST(RecomputeOracle, DegenerateInstances)
{
    // No units at all.
    const auto empty = solveRecomputeKnapsack({}, 1024);
    EXPECT_TRUE(empty.saved.empty());
    EXPECT_EQ(empty.savedUnits, 0);
    EXPECT_DOUBLE_EQ(empty.savedFwdTime, 0.0);

    // Only always-saved units: nothing to optimise, zero budget use.
    std::vector<UnitProfile> fixed{unit(1.0, 4096, true),
                                   unit(2.0, 8192, true)};
    const auto r = solveRecomputeKnapsack(fixed, 0);
    EXPECT_TRUE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
    EXPECT_EQ(r.savedUnits, 2);
    EXPECT_EQ(r.savedBytes, 0u);

    // A unit bigger than any budget can never be saved.
    std::vector<UnitProfile> big{unit(10.0, 1 << 30)};
    const auto never = solveRecomputeKnapsack(big, 1 << 20);
    EXPECT_FALSE(never.saved[0]);
}

TEST(RecomputeOracle, ZeroCostUnitsSitOutsideTheKnapsack)
{
    // Contract: a unit with memSaved == 0 participates in neither
    // the knapsack nor the save set (optionalUnits filters it), at
    // any budget — the DP and the library brute force must agree.
    std::vector<UnitProfile> units{unit(1.0, 0), unit(2.0, 1024)};
    for (const std::int64_t budget : {std::int64_t{0},
                                      std::int64_t{1 << 20}}) {
        const auto dp = solveRecomputeKnapsack(units, budget);
        const auto bf = bruteForceRecompute(units, budget);
        EXPECT_FALSE(dp.saved[0]) << "budget " << budget;
        EXPECT_FALSE(bf.saved[0]) << "budget " << budget;
        EXPECT_EQ(dp.saved[1], bf.saved[1]) << "budget " << budget;
        EXPECT_NEAR(dp.savedFwdTime, bf.savedFwdTime, 1e-12);
    }
}

TEST(RecomputeOracle, ZeroBubbleMatchesTheLegacyObjective)
{
    // overlapBubble = 0 must be a perfect no-op: identical saved
    // vectors and bookkeeping for both solvers, with the new
    // hidden/critical fields reporting the whole replay as critical.
    Rng rng(7);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 9; ++i)
        units.push_back(unit(rng.uniform(0.1, 3.0),
                             256 * rng.uniformInt(1, 16),
                             rng.uniform() < 0.15));
    const std::int64_t budget = 256 * 20;

    RecomputeDpOptions with_bubble;
    with_bubble.overlapBubble = 0;
    const auto legacy = solveRecomputeKnapsack(units, budget);
    const auto dp = solveRecomputeKnapsack(units, budget, with_bubble);
    EXPECT_EQ(dp.saved, legacy.saved);
    EXPECT_EQ(dp.savedBytes, legacy.savedBytes);
    EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, 0.0);
    EXPECT_DOUBLE_EQ(dp.criticalReplayTime, legacy.criticalReplayTime);

    const auto bf2 = bruteForceRecompute(units, budget);
    const auto bf3 = bruteForceRecompute(units, budget, 0);
    EXPECT_EQ(bf3.saved, bf2.saved);
    EXPECT_DOUBLE_EQ(bf3.hiddenReplayTime, 0.0);
}

TEST(RecomputeOracle, BubbleCoveringAllReplaySavesNothing)
{
    // A bubble at least as large as every optional unit's replay
    // makes saving pointless: the solver must spend zero memory and
    // report the whole replay as hidden.
    std::vector<UnitProfile> units{unit(1.0, 1024), unit(2.0, 2048),
                                   unit(0.5, 512, true)};
    RecomputeDpOptions opts;
    opts.overlapBubble = 10.0; // >> 1.0 + 2.0 of optional replay
    const auto dp =
        solveRecomputeKnapsack(units, 1 << 20, opts);
    EXPECT_FALSE(dp.saved[0]);
    EXPECT_FALSE(dp.saved[1]);
    EXPECT_TRUE(dp.saved[2]);
    EXPECT_EQ(dp.savedBytes, 0u);
    EXPECT_DOUBLE_EQ(dp.criticalReplayTime, 0.0);
    EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, 3.0);

    const auto bf = bruteForceRecompute(units, 1 << 20, 10.0);
    EXPECT_EQ(bf.saved, dp.saved);
    EXPECT_DOUBLE_EQ(bf.criticalReplayTime, 0.0);
}

TEST(RecomputeOracle, DiscountedDpMatchesBruteForce)
{
    // Random instances with exactly-representable quarter-integer
    // times and 256-multiple sizes (GCD quantisation lossless, float
    // sums exact), bubbles offset by 1/8 so no comparison ever lands
    // on a tie: the DP's discounted solution must match the
    // lexicographic brute force bit for bit.
    for (int seed = 1; seed <= 24; ++seed) {
        Rng rng(seed);
        const int n = 4 + seed % 7;
        std::vector<UnitProfile> units;
        std::int64_t total = 0;
        Seconds total_fwd = 0;
        for (int i = 0; i < n; ++i) {
            const bool always = rng.uniform() < 0.15;
            // memSaved == 0 keeps the unit outside the knapsack but
            // inside the fixed replay the bubble absorbs first.
            const Bytes mem =
                rng.uniform() < 0.2
                    ? 0
                    : static_cast<Bytes>(256 * rng.uniformInt(1, 8));
            const Seconds t = 0.25 * rng.uniformInt(1, 16);
            units.push_back(unit(t, mem, always));
            if (!always) {
                total += static_cast<std::int64_t>(mem);
                total_fwd += t;
            }
        }
        const std::int64_t budget =
            256 * rng.uniformInt(0, static_cast<int>(total / 256));
        const Seconds bubble =
            0.25 * rng.uniformInt(0, static_cast<int>(
                                         total_fwd * 4 + 4)) +
            0.125;

        RecomputeDpOptions opts;
        opts.overlapBubble = bubble;
        const auto dp = solveRecomputeKnapsack(units, budget, opts);
        const auto bf = bruteForceRecompute(units, budget, bubble);
        checkSelfConsistent(units, dp);

        EXPECT_DOUBLE_EQ(dp.criticalReplayTime, bf.criticalReplayTime)
            << "seed " << seed << " bubble " << bubble << " budget "
            << budget;
        EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, bf.hiddenReplayTime)
            << "seed " << seed;
        EXPECT_LE(dp.savedBytes,
                  static_cast<Bytes>(std::max<std::int64_t>(budget, 0)));
        if (bf.criticalReplayTime == 0.0) {
            // Zero critical replay is achievable: both solvers must
            // then spend the *minimal* memory that achieves it.
            EXPECT_EQ(dp.savedBytes, bf.savedBytes)
                << "seed " << seed << " bubble " << bubble;
        }
        // hidden + critical always reconstructs the full replay of
        // the unsaved units.
        Seconds unsaved = 0;
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (!units[i].alwaysSaved && !dp.saved[i])
                unsaved += units[i].timeFwd;
        }
        EXPECT_NEAR(dp.hiddenReplayTime + dp.criticalReplayTime,
                    unsaved, 1e-9)
            << "seed " << seed;
    }
}

TEST(TriChoiceOracle, DpMatchesBruteForceOnRepresentableInstances)
{
    // Random keep/recompute/offload instances built so every DP
    // quantisation is lossless: memory sizes are 256-multiples (GCD
    // granularity 256), the link budget is maxLinkBuckets * 256 with
    // bandwidth 2 B/s (linkTime(bytes) == bytes, an exact multiple of
    // the 256 s/bucket link granularity) and times are
    // quarter-integers. The DP must then match the exponential
    // tri-choice oracle exactly — objective and tie-break fields.
    for (int seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        const int n = 3 + seed % 8;
        std::vector<UnitProfile> units;
        std::int64_t total = 0;
        for (int i = 0; i < n; ++i) {
            const bool always = rng.uniform() < 0.15;
            const Bytes mem =
                static_cast<Bytes>(256 * rng.uniformInt(1, 8));
            units.push_back(
                unit(0.25 * rng.uniformInt(1, 16), mem, always));
            if (!always)
                total += static_cast<std::int64_t>(mem);
        }
        const std::int64_t budget =
            256 * rng.uniformInt(0, static_cast<int>(total / 256));

        RecomputeDpOptions opts;
        opts.offload.enabled = true;
        opts.offload.bandwidth = 2.0; // linkTime(bytes) == bytes
        opts.offload.overlapFraction = 0.5;
        opts.offload.maxLinkBuckets = rng.uniformInt(2, 12);
        opts.offload.linkBudgetPerMb =
            256.0 * opts.offload.maxLinkBuckets;

        const auto dp = solveRecomputeKnapsack(units, budget, opts);
        const auto bf = bruteForceTriChoice(units, budget, opts);

        ASSERT_EQ(dp.saved.size(), units.size());
        ASSERT_EQ(dp.offloaded.size(), units.size());
        for (std::size_t i = 0; i < units.size(); ++i) {
            EXPECT_FALSE(dp.saved[i] && dp.offloaded[i])
                << "unit " << i << " both saved and offloaded";
            if (units[i].alwaysSaved)
                EXPECT_FALSE(dp.offloaded[i])
                    << "always-saved unit " << i << " offloaded";
        }
        EXPECT_LE(dp.savedBytes, static_cast<Bytes>(budget));
        EXPECT_LE(dp.offloadLinkTime,
                  opts.offload.linkBudgetPerMb + 1e-9);

        EXPECT_NEAR(dp.criticalReplayTime + dp.offloadExposedTime,
                    bf.criticalReplayTime + bf.offloadExposedTime,
                    1e-9)
            << "seed " << seed << " budget " << budget << " link "
            << opts.offload.linkBudgetPerMb;
        EXPECT_EQ(dp.savedBytes, bf.savedBytes) << "seed " << seed;
        EXPECT_NEAR(dp.offloadLinkTime, bf.offloadLinkTime, 1e-9)
            << "seed " << seed;
        EXPECT_NEAR(dp.savedFwdTime, bf.savedFwdTime, 1e-9)
            << "seed " << seed;
    }
}

TEST(TriChoiceOracle, OffloadedUnitsDoNotConsumeBubbleBudget)
{
    // Two optional units, zero memory budget (nothing can be kept),
    // a bubble of 2 s and a link budget that fits one unit. With the
    // transfer fully overlapped, offloading either unit leaves the
    // other's replay inside the bubble: critical replay drops from
    // 1 s (recompute both, 3 s replay - 2 s bubble) to 0. The DP
    // must take the offload, charge the offloaded unit zero replay
    // and zero bubble, and prefer the smaller transfer on the tie.
    std::vector<UnitProfile> units{unit(1.0, 512), unit(2.0, 1024)};
    RecomputeDpOptions opts;
    opts.overlapBubble = 2.0;
    opts.offload.enabled = true;
    opts.offload.bandwidth = 2.0;
    opts.offload.overlapFraction = 1.0;
    opts.offload.maxLinkBuckets = 4;
    opts.offload.linkBudgetPerMb = 1024.0;

    const auto dp = solveRecomputeKnapsack(units, 0, opts);
    EXPECT_TRUE(dp.offloaded[0]);
    EXPECT_FALSE(dp.offloaded[1]);
    EXPECT_FALSE(dp.saved[0]);
    EXPECT_FALSE(dp.saved[1]);
    EXPECT_DOUBLE_EQ(dp.criticalReplayTime, 0.0);
    // Only the recomputed unit's 2 s replay hides in the bubble; the
    // offloaded unit contributes nothing to either replay field.
    EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, 2.0);
    EXPECT_DOUBLE_EQ(dp.offloadExposedTime, 0.0);
    EXPECT_EQ(dp.offloadBytes, 512u);

    const auto bf = bruteForceTriChoice(units, 0, opts);
    EXPECT_EQ(bf.offloaded, dp.offloaded);
    EXPECT_DOUBLE_EQ(bf.criticalReplayTime, 0.0);

    // The converse guard: a giant bubble hides *replay*, never the
    // exposed transfer share. With zero overlap every offload would
    // put its full link time on the critical path while recompute is
    // free under the bubble — the solver must not offload anything.
    RecomputeDpOptions exposed = opts;
    exposed.overlapBubble = 10.0;
    exposed.offload.overlapFraction = 0.0;
    const auto none = solveRecomputeKnapsack(units, 0, exposed);
    EXPECT_EQ(none.offloadedUnits, 0);
    EXPECT_DOUBLE_EQ(none.offloadExposedTime, 0.0);
    EXPECT_DOUBLE_EQ(none.criticalReplayTime, 0.0);
    EXPECT_DOUBLE_EQ(none.hiddenReplayTime, 3.0);
}

TEST(RecomputeOracle, MatchesLibraryBruteForce)
{
    // Cross-check the two oracles against each other on a mixed
    // instance (library bruteForceRecompute vs this test's own
    // subset enumeration).
    Rng rng(99);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 10; ++i)
        units.push_back(unit(rng.uniform(0.1, 3.0),
                             512 * rng.uniformInt(1, 32),
                             rng.uniform() < 0.1));
    const std::int64_t budget = 512 * 50;
    const OracleResult mine = enumerateSaveSubsets(units, budget);
    const RecomputePlanResult lib = bruteForceRecompute(units, budget);
    EXPECT_NEAR(lib.savedFwdTime, mine.bestValue, 1e-12);
}

} // namespace
} // namespace adapipe
