/**
 * @file
 * Optimality oracle for the Sec. 4.3 recomputation knapsack:
 * exhaustively enumerate every save-subset of small unit sets (all
 * 2^U of them, independently of the library's bruteForceRecompute)
 * and verify the DP matches the best feasible one exactly — value,
 * budget feasibility and tie-breaking invariants.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/recompute_dp.h"
#include "util/rng.h"

namespace adapipe {
namespace {

UnitProfile
unit(Seconds time_f, Bytes mem, bool always_saved = false)
{
    UnitProfile u;
    u.timeFwd = time_f;
    u.timeBwd = 2 * time_f;
    u.memSaved = mem;
    u.alwaysSaved = always_saved;
    return u;
}

/** The exhaustive optimum over all 2^U save-subsets. */
struct OracleResult
{
    Seconds bestValue = -1;
    Bytes bestBytes = 0;
    bool feasibleExists = false;
};

OracleResult
enumerateSaveSubsets(const std::vector<UnitProfile> &units,
                     std::int64_t budget)
{
    const std::size_t n = units.size();
    EXPECT_LE(n, 20u) << "oracle is exponential, keep instances small";
    OracleResult oracle;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        Seconds value = 0;
        std::int64_t bytes = 0;
        bool valid = true;
        for (std::size_t i = 0; i < n; ++i) {
            const bool take = (mask >> i) & 1u;
            if (units[i].alwaysSaved) {
                // Always-saved units sit outside the knapsack: every
                // candidate subset must include them at zero cost.
                if (!take)
                    valid = false;
                continue;
            }
            if (take) {
                value += units[i].timeFwd;
                bytes += static_cast<std::int64_t>(units[i].memSaved);
            }
        }
        if (!valid || bytes > std::max<std::int64_t>(budget, 0))
            continue;
        oracle.feasibleExists = true;
        if (value > oracle.bestValue) {
            oracle.bestValue = value;
            oracle.bestBytes = static_cast<Bytes>(bytes);
        }
    }
    return oracle;
}

/** Re-derive the DP result's value/bytes from its saved[] vector. */
void
checkSelfConsistent(const std::vector<UnitProfile> &units,
                    const RecomputePlanResult &r)
{
    ASSERT_EQ(r.saved.size(), units.size());
    Seconds value = 0;
    Bytes bytes = 0;
    int count = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].alwaysSaved) {
            EXPECT_TRUE(r.saved[i]) << "unit " << i;
        }
        if (!r.saved[i])
            continue;
        ++count;
        if (units[i].alwaysSaved)
            continue;
        value += units[i].timeFwd;
        bytes += units[i].memSaved;
    }
    EXPECT_NEAR(r.savedFwdTime, value, 1e-12);
    EXPECT_EQ(r.savedBytes, bytes);
    EXPECT_EQ(r.savedUnits, count);
}

/**
 * Parameter: RNG seed. Each seed builds a random instance with
 * power-of-two unit sizes (so GCD quantisation is lossless and the
 * DP must be *exactly* optimal), a random mix of always-saved units
 * and a random budget including the 0 and everything-fits edges.
 */
class RecomputeOracle : public ::testing::TestWithParam<int>
{};

TEST_P(RecomputeOracle, DpMatchesExhaustiveSubsetEnumeration)
{
    Rng rng(GetParam());
    const int n = 3 + GetParam() % 10;
    std::vector<UnitProfile> units;
    std::int64_t total = 0;
    for (int i = 0; i < n; ++i) {
        const bool always = rng.uniform() < 0.2;
        const Bytes mem = static_cast<Bytes>(256)
                          << rng.uniformInt(0, 6);
        units.push_back(unit(rng.uniform(0.05, 4.0), mem, always));
        if (!always)
            total += static_cast<std::int64_t>(mem);
    }

    // Budgets: empty, partial (random fractions), exactly-full and
    // overflowing.
    std::vector<std::int64_t> budgets{0, total, total + 123};
    for (int b = 0; b < 4; ++b)
        budgets.push_back(256 * rng.uniformInt(0, static_cast<int>(
                                                      total / 256)));

    for (const std::int64_t budget : budgets) {
        const OracleResult oracle =
            enumerateSaveSubsets(units, budget);
        const RecomputePlanResult dp =
            solveRecomputeKnapsack(units, budget);

        checkSelfConsistent(units, dp);
        ASSERT_TRUE(oracle.feasibleExists)
            << "all-recompute is always feasible";
        EXPECT_NEAR(dp.savedFwdTime, oracle.bestValue, 1e-9)
            << "seed " << GetParam() << " budget " << budget;
        EXPECT_LE(dp.savedBytes,
                  static_cast<Bytes>(std::max<std::int64_t>(budget, 0)))
            << "seed " << GetParam() << " budget " << budget;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecomputeOracle,
                         ::testing::Range(1, 41));

TEST(RecomputeOracle, DegenerateInstances)
{
    // No units at all.
    const auto empty = solveRecomputeKnapsack({}, 1024);
    EXPECT_TRUE(empty.saved.empty());
    EXPECT_EQ(empty.savedUnits, 0);
    EXPECT_DOUBLE_EQ(empty.savedFwdTime, 0.0);

    // Only always-saved units: nothing to optimise, zero budget use.
    std::vector<UnitProfile> fixed{unit(1.0, 4096, true),
                                   unit(2.0, 8192, true)};
    const auto r = solveRecomputeKnapsack(fixed, 0);
    EXPECT_TRUE(r.saved[0]);
    EXPECT_TRUE(r.saved[1]);
    EXPECT_EQ(r.savedUnits, 2);
    EXPECT_EQ(r.savedBytes, 0u);

    // A unit bigger than any budget can never be saved.
    std::vector<UnitProfile> big{unit(10.0, 1 << 30)};
    const auto never = solveRecomputeKnapsack(big, 1 << 20);
    EXPECT_FALSE(never.saved[0]);
}

TEST(RecomputeOracle, ZeroCostUnitsSitOutsideTheKnapsack)
{
    // Contract: a unit with memSaved == 0 participates in neither
    // the knapsack nor the save set (optionalUnits filters it), at
    // any budget — the DP and the library brute force must agree.
    std::vector<UnitProfile> units{unit(1.0, 0), unit(2.0, 1024)};
    for (const std::int64_t budget : {std::int64_t{0},
                                      std::int64_t{1 << 20}}) {
        const auto dp = solveRecomputeKnapsack(units, budget);
        const auto bf = bruteForceRecompute(units, budget);
        EXPECT_FALSE(dp.saved[0]) << "budget " << budget;
        EXPECT_FALSE(bf.saved[0]) << "budget " << budget;
        EXPECT_EQ(dp.saved[1], bf.saved[1]) << "budget " << budget;
        EXPECT_NEAR(dp.savedFwdTime, bf.savedFwdTime, 1e-12);
    }
}

TEST(RecomputeOracle, ZeroBubbleMatchesTheLegacyObjective)
{
    // overlapBubble = 0 must be a perfect no-op: identical saved
    // vectors and bookkeeping for both solvers, with the new
    // hidden/critical fields reporting the whole replay as critical.
    Rng rng(7);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 9; ++i)
        units.push_back(unit(rng.uniform(0.1, 3.0),
                             256 * rng.uniformInt(1, 16),
                             rng.uniform() < 0.15));
    const std::int64_t budget = 256 * 20;

    RecomputeDpOptions with_bubble;
    with_bubble.overlapBubble = 0;
    const auto legacy = solveRecomputeKnapsack(units, budget);
    const auto dp = solveRecomputeKnapsack(units, budget, with_bubble);
    EXPECT_EQ(dp.saved, legacy.saved);
    EXPECT_EQ(dp.savedBytes, legacy.savedBytes);
    EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, 0.0);
    EXPECT_DOUBLE_EQ(dp.criticalReplayTime, legacy.criticalReplayTime);

    const auto bf2 = bruteForceRecompute(units, budget);
    const auto bf3 = bruteForceRecompute(units, budget, 0);
    EXPECT_EQ(bf3.saved, bf2.saved);
    EXPECT_DOUBLE_EQ(bf3.hiddenReplayTime, 0.0);
}

TEST(RecomputeOracle, BubbleCoveringAllReplaySavesNothing)
{
    // A bubble at least as large as every optional unit's replay
    // makes saving pointless: the solver must spend zero memory and
    // report the whole replay as hidden.
    std::vector<UnitProfile> units{unit(1.0, 1024), unit(2.0, 2048),
                                   unit(0.5, 512, true)};
    RecomputeDpOptions opts;
    opts.overlapBubble = 10.0; // >> 1.0 + 2.0 of optional replay
    const auto dp =
        solveRecomputeKnapsack(units, 1 << 20, opts);
    EXPECT_FALSE(dp.saved[0]);
    EXPECT_FALSE(dp.saved[1]);
    EXPECT_TRUE(dp.saved[2]);
    EXPECT_EQ(dp.savedBytes, 0u);
    EXPECT_DOUBLE_EQ(dp.criticalReplayTime, 0.0);
    EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, 3.0);

    const auto bf = bruteForceRecompute(units, 1 << 20, 10.0);
    EXPECT_EQ(bf.saved, dp.saved);
    EXPECT_DOUBLE_EQ(bf.criticalReplayTime, 0.0);
}

TEST(RecomputeOracle, DiscountedDpMatchesBruteForce)
{
    // Random instances with exactly-representable quarter-integer
    // times and 256-multiple sizes (GCD quantisation lossless, float
    // sums exact), bubbles offset by 1/8 so no comparison ever lands
    // on a tie: the DP's discounted solution must match the
    // lexicographic brute force bit for bit.
    for (int seed = 1; seed <= 24; ++seed) {
        Rng rng(seed);
        const int n = 4 + seed % 7;
        std::vector<UnitProfile> units;
        std::int64_t total = 0;
        Seconds total_fwd = 0;
        for (int i = 0; i < n; ++i) {
            const bool always = rng.uniform() < 0.15;
            // memSaved == 0 keeps the unit outside the knapsack but
            // inside the fixed replay the bubble absorbs first.
            const Bytes mem =
                rng.uniform() < 0.2
                    ? 0
                    : static_cast<Bytes>(256 * rng.uniformInt(1, 8));
            const Seconds t = 0.25 * rng.uniformInt(1, 16);
            units.push_back(unit(t, mem, always));
            if (!always) {
                total += static_cast<std::int64_t>(mem);
                total_fwd += t;
            }
        }
        const std::int64_t budget =
            256 * rng.uniformInt(0, static_cast<int>(total / 256));
        const Seconds bubble =
            0.25 * rng.uniformInt(0, static_cast<int>(
                                         total_fwd * 4 + 4)) +
            0.125;

        RecomputeDpOptions opts;
        opts.overlapBubble = bubble;
        const auto dp = solveRecomputeKnapsack(units, budget, opts);
        const auto bf = bruteForceRecompute(units, budget, bubble);
        checkSelfConsistent(units, dp);

        EXPECT_DOUBLE_EQ(dp.criticalReplayTime, bf.criticalReplayTime)
            << "seed " << seed << " bubble " << bubble << " budget "
            << budget;
        EXPECT_DOUBLE_EQ(dp.hiddenReplayTime, bf.hiddenReplayTime)
            << "seed " << seed;
        EXPECT_LE(dp.savedBytes,
                  static_cast<Bytes>(std::max<std::int64_t>(budget, 0)));
        if (bf.criticalReplayTime == 0.0) {
            // Zero critical replay is achievable: both solvers must
            // then spend the *minimal* memory that achieves it.
            EXPECT_EQ(dp.savedBytes, bf.savedBytes)
                << "seed " << seed << " bubble " << bubble;
        }
        // hidden + critical always reconstructs the full replay of
        // the unsaved units.
        Seconds unsaved = 0;
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (!units[i].alwaysSaved && !dp.saved[i])
                unsaved += units[i].timeFwd;
        }
        EXPECT_NEAR(dp.hiddenReplayTime + dp.criticalReplayTime,
                    unsaved, 1e-9)
            << "seed " << seed;
    }
}

TEST(RecomputeOracle, MatchesLibraryBruteForce)
{
    // Cross-check the two oracles against each other on a mixed
    // instance (library bruteForceRecompute vs this test's own
    // subset enumeration).
    Rng rng(99);
    std::vector<UnitProfile> units;
    for (int i = 0; i < 10; ++i)
        units.push_back(unit(rng.uniform(0.1, 3.0),
                             512 * rng.uniformInt(1, 32),
                             rng.uniform() < 0.1));
    const std::int64_t budget = 512 * 50;
    const OracleResult mine = enumerateSaveSubsets(units, budget);
    const RecomputePlanResult lib = bruteForceRecompute(units, budget);
    EXPECT_NEAR(lib.savedFwdTime, mine.bestValue, 1e-12);
}

} // namespace
} // namespace adapipe
