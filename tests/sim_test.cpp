/**
 * @file
 * Tests for the pipeline simulator: schedule construction, dependency
 * correctness, memory invariants and the qualitative schedule
 * properties the paper relies on (Sec. 2.1 and Sec. 7.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "util/logging.h"

#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "sim/timeline.h"

namespace adapipe {
namespace {

std::vector<StageTimes>
uniformStages(int p, double f, double b)
{
    return std::vector<StageTimes>(p, StageTimes{f, b});
}

TEST(Schedule, GPipeShape)
{
    const Schedule s = buildGPipe(3, 6);
    EXPECT_EQ(s.ops.size(), 3u * 6 * 2);
    EXPECT_EQ(s.deviceOrder.size(), 3u);
    // Per device: forwards strictly before backwards.
    for (const auto &order : s.deviceOrder) {
        bool seen_backward = false;
        for (std::size_t idx : order) {
            if (s.ops[idx].kind == OpKind::Backward)
                seen_backward = true;
            else
                EXPECT_FALSE(seen_backward);
        }
    }
}

TEST(Schedule, OneFOneBShape)
{
    const Schedule s = build1F1B(3, 6);
    EXPECT_EQ(s.ops.size(), 3u * 6 * 2);
    // Last stage alternates F B F B ... from the start.
    const auto &order = s.deviceOrder[2];
    for (std::size_t i = 0; i < order.size(); ++i) {
        const OpKind expected =
            i % 2 == 0 ? OpKind::Forward : OpKind::Backward;
        EXPECT_EQ(s.ops[order[i]].kind, expected) << "position " << i;
    }
}

TEST(Sim, NoOverlapOnDevice)
{
    const Schedule s = build1F1B(4, 8);
    const SimResult r = simulate(s, uniformStages(4, 1.0, 2.0), {});
    for (int dev = 0; dev < 4; ++dev) {
        std::vector<std::pair<double, double>> spans;
        for (std::size_t i = 0; i < s.ops.size(); ++i) {
            if (s.ops[i].device == dev)
                spans.emplace_back(r.records[i].start,
                                   r.records[i].end);
        }
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12);
    }
}

TEST(Sim, DependenciesRespected)
{
    const Schedule s = build1F1B(4, 8);
    const SimOptions opts{0.25};
    const SimResult r = simulate(s, uniformStages(4, 1.0, 2.0), opts);
    auto find = [&](int pos, int mb, OpKind kind) -> const OpRecord & {
        for (std::size_t i = 0; i < s.ops.size(); ++i) {
            const PipeOp &op = s.ops[i];
            if (op.pos == pos && op.microBatch == mb &&
                op.kind == kind) {
                return r.records[i];
            }
        }
        ADAPIPE_PANIC("op not found");
    };
    for (int mb = 0; mb < 8; ++mb) {
        for (int pos = 1; pos < 4; ++pos) {
            EXPECT_GE(find(pos, mb, OpKind::Forward).start,
                      find(pos - 1, mb, OpKind::Forward).end + 0.25 -
                          1e-12);
        }
        for (int pos = 0; pos < 3; ++pos) {
            EXPECT_GE(find(pos, mb, OpKind::Backward).start,
                      find(pos + 1, mb, OpKind::Backward).end + 0.25 -
                          1e-12);
        }
        EXPECT_GE(find(3, mb, OpKind::Backward).start,
                  find(3, mb, OpKind::Forward).end - 1e-12);
    }
}

TEST(Sim, OneFOneBPeakAliveIsPMinusS)
{
    // The key 1F1B memory invariant (Sec. 2.1): stage s keeps
    // p - s micro-batch activations.
    for (int p : {2, 4, 8}) {
        const int n = 3 * p;
        const SimResult r = simulate(build1F1B(p, n),
                                     uniformStages(p, 1.0, 2.0), {});
        for (int s = 0; s < p; ++s)
            EXPECT_EQ(r.peakAlive[s], p - s) << "p=" << p << " s=" << s;
    }
}

TEST(Sim, GPipePeakAliveIsN)
{
    const int p = 4;
    const int n = 12;
    const SimResult r =
        simulate(buildGPipe(p, n), uniformStages(p, 1.0, 2.0), {});
    for (int s = 0; s < p; ++s)
        EXPECT_EQ(r.peakAlive[s], n);
}

TEST(Sim, GPipeAnd1F1BSameIterationTimeUniform)
{
    const int p = 4;
    const int n = 16;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult g = simulate(buildGPipe(p, n), stages, {});
    const SimResult f = simulate(build1F1B(p, n), stages, {});
    EXPECT_NEAR(g.iterationTime, f.iterationTime, 1e-9);
}

TEST(Sim, BubbleCountMatches1F1BTheory)
{
    // Total idle inside one iteration = (p - 1)(F + B) per device
    // boundary effect; check the aggregate busy/total relation.
    const int p = 4;
    const int n = 8;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult r = simulate(build1F1B(p, n), stages, {});
    EXPECT_NEAR(r.iterationTime, (n + p - 1) * 3.0, 1e-9);
    for (int dev = 0; dev < p; ++dev)
        EXPECT_NEAR(r.deviceBusy[dev], n * 3.0, 1e-9);
}

TEST(Sim, ChimeraMatches1F1BWhenNEqualsP)
{
    // With n == p Chimera's bidirectional schedule fills bubbles at
    // least as well as 1F1B (Sec. 2.1).
    const int p = 4;
    const int n = 4;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult chi = simulate(buildChimera(p, n), stages, {});
    const SimResult f1b = simulate(build1F1B(p, n), stages, {});
    EXPECT_LE(chi.iterationTime, f1b.iterationTime + 1e-9);
}

TEST(Sim, ChimeraWorseThan1F1BWhenNExceedsP)
{
    // The concatenation bubbles of Sec. 7.2: with n >> p Chimera
    // falls behind 1F1B.
    const int p = 4;
    const int n = 32;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult chi = simulate(buildChimera(p, n), stages, {});
    const SimResult f1b = simulate(build1F1B(p, n), stages, {});
    EXPECT_GT(chi.iterationTime, f1b.iterationTime);
}

TEST(Sim, ChimeraDBeatsChimeraWithSlowBackward)
{
    // Forward doubling equalises slot sizes; with B = 2F it reduces
    // the inter-unit bubbles.
    const int p = 4;
    const int n = 32;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult chi = simulate(buildChimera(p, n), stages, {});
    const SimResult chid = simulate(buildChimeraD(p, n), stages, {});
    EXPECT_LE(chid.iterationTime, chi.iterationTime + 1e-9);
}

TEST(Sim, ChimeraMiddleDevicesHoldMoreActivations)
{
    // Fig. 8: Chimera's middle devices store the most micro-batches
    // (both chains overlap there).
    const int p = 8;
    const int n = 16;
    const SimResult r = simulate(buildChimera(p, n),
                                 uniformStages(p, 1.0, 2.0), {});
    int edge = std::max(r.peakAlive[0], r.peakAlive[p - 1]);
    int middle = 0;
    for (int d = 1; d < p - 1; ++d)
        middle = std::max(middle, r.peakAlive[d]);
    EXPECT_GE(middle, edge);
}

TEST(Sim, ChimeraDDoublesForwardDuration)
{
    const Schedule s = buildChimeraD(4, 8);
    const SimResult r = simulate(s, uniformStages(4, 1.0, 2.0), {});
    for (std::size_t i = 0; i < s.ops.size(); ++i) {
        const double dur = r.records[i].end - r.records[i].start;
        if (s.ops[i].kind == OpKind::Forward)
            EXPECT_NEAR(dur, 2.0, 1e-12);
        else
            EXPECT_NEAR(dur, 2.0, 1e-12);
    }
}

TEST(Sim, P2pDelaysIteration)
{
    const int p = 4;
    const int n = 8;
    const auto stages = uniformStages(p, 1.0, 2.0);
    const SimResult fast = simulate(build1F1B(p, n), stages, {0.0});
    const SimResult slow = simulate(build1F1B(p, n), stages, {0.5});
    EXPECT_GT(slow.iterationTime, fast.iterationTime);
}

TEST(Timeline, RendersEveryDevice)
{
    const Schedule s = build1F1B(3, 4);
    const SimResult r = simulate(s, uniformStages(3, 1.0, 1.0), {});
    const std::string text = renderTimeline(s, r, 60);
    EXPECT_NE(text.find("1F1B"), std::string::npos);
    EXPECT_NE(text.find("dev0"), std::string::npos);
    EXPECT_NE(text.find("dev2"), std::string::npos);
    // Forward of micro-batch 0 appears as '0', backward as 'a'.
    EXPECT_NE(text.find('0'), std::string::npos);
    EXPECT_NE(text.find('a'), std::string::npos);
}

TEST(Sim, RejectsMissingStageTimes)
{
    const Schedule s = build1F1B(4, 4);
    EXPECT_DEATH(simulate(s, uniformStages(3, 1.0, 2.0), {}),
                 "stage times for every chain position");
}

TEST(Sim, DetectsMalformedSchedule)
{
    // A backward whose forward is missing must be caught, not
    // silently scheduled.
    Schedule s;
    s.name = "broken";
    s.numDevices = 1;
    s.chainLength = 1;
    s.numMicroBatches = 1;
    s.chainMicroBatches = {1};
    PipeOp op;
    op.kind = OpKind::Backward;
    s.ops.push_back(op);
    s.deviceOrder = {{0}};
    EXPECT_DEATH(simulate(s, uniformStages(1, 1.0, 2.0), {}),
                 "missing dependency");
}

TEST(Sim, DetectsDuplicateOps)
{
    Schedule s = build1F1B(2, 2);
    s.ops.push_back(s.ops.front());
    s.deviceOrder[0].push_back(s.ops.size() - 1);
    EXPECT_DEATH(simulate(s, uniformStages(2, 1.0, 2.0), {}),
                 "duplicate op");
}

TEST(Schedule, ChimeraRejectsOddConfigs)
{
    EXPECT_DEATH(buildChimera(3, 4), "even pipeline");
    EXPECT_DEATH(buildChimera(4, 5), "even micro-batch");
    EXPECT_DEATH(buildChimeraD(4, 6), "divisible by 4");
}

} // namespace
} // namespace adapipe
