/**
 * @file
 * Determinism and thread-safety of the strategy sweep: the parallel
 * sweep must be bit-identical to the sequential one — same result
 * order, same plans, same merged observability counters — and
 * bestStrategy must tie-break deterministically (earliest strategy
 * in enumeration order wins) for any worker count.
 */

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "core/plan_io.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"

namespace adapipe {
namespace {

StrategySearchOptions
withThreads(unsigned threads)
{
    StrategySearchOptions opts;
    opts.threads = threads;
    return opts;
}

/** Bit-identical comparison via the canonical JSON serialization. */
void
expectSameResults(const std::vector<StrategyResult> &a,
                  const std::vector<StrategyResult> &b,
                  const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].par.tensor, b[i].par.tensor) << label;
        EXPECT_EQ(a[i].par.pipeline, b[i].par.pipeline) << label;
        EXPECT_EQ(a[i].par.data, b[i].par.data) << label;
        ASSERT_EQ(a[i].result.ok, b[i].result.ok)
            << label << " strategy " << a[i].par.toString();
        if (!a[i].result.ok) {
            EXPECT_EQ(a[i].result.oomReason, b[i].result.oomReason)
                << label;
            continue;
        }
        // The serialized plan captures partition, per-unit save
        // decisions and timing; equality here means the plans are
        // bit-identical, not merely close.
        EXPECT_EQ(planToJsonString(a[i].result.plan, 0),
                  planToJsonString(b[i].result.plan, 0))
            << label << " strategy " << a[i].par.toString();
    }
}

/** Parameter: (seqLen, globalBatch, worker count under test). */
class SweepDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>>
{};

TEST_P(SweepDeterminism, ThreadedSweepMatchesSequential)
{
    const auto [seq, global_batch, workers] = GetParam();
    const ModelConfig model = tinyTestModel();
    const ClusterSpec cluster = clusterA(1);
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = global_batch;

    obs::Registry serial_metrics;
    std::vector<StrategyResult> serial;
    {
        obs::ScopedRegistry scope(&serial_metrics);
        serial = sweepStrategies(model, train, cluster,
                                 PlanMethod::AdaPipe, withThreads(1));
    }
    ASSERT_FALSE(serial.empty());

    obs::Registry threaded_metrics;
    std::vector<StrategyResult> threaded;
    {
        obs::ScopedRegistry scope(&threaded_metrics);
        threaded =
            sweepStrategies(model, train, cluster, PlanMethod::AdaPipe,
                            withThreads(workers));
    }

    expectSameResults(serial, threaded,
                      "threads=" + std::to_string(workers));

    // Counters merge by addition on join, so the per-worker split
    // must not be visible: totals are bit-identical to the serial
    // run's.
    EXPECT_EQ(serial_metrics.counters(), threaded_metrics.counters());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SweepDeterminism,
    ::testing::Combine(::testing::Values(512, 1024),
                       ::testing::Values(8, 16),
                       ::testing::Values(2u, 4u, 7u, 0u)));

TEST(SweepDeterminism, RepeatedRunsAreIdentical)
{
    // Same-thread-count stability: no hidden iteration-order or
    // uninitialised-memory nondeterminism between runs.
    const ModelConfig model = tinyTestModel();
    const ClusterSpec cluster = clusterA(1);
    TrainConfig train;
    train.seqLen = 512;
    train.globalBatch = 16;

    const auto first = sweepStrategies(model, train, cluster,
                                       PlanMethod::AdaPipe,
                                       withThreads(4));
    const auto second = sweepStrategies(model, train, cluster,
                                        PlanMethod::AdaPipe,
                                        withThreads(4));
    expectSameResults(first, second, "repeat");
}

TEST(SweepDeterminism, ResultsKeepEnumerationOrder)
{
    const ModelConfig model = tinyTestModel();
    const ClusterSpec cluster = clusterA(1);
    TrainConfig train;
    train.seqLen = 512;
    train.globalBatch = 16;

    const auto strategies =
        enumerateStrategies(model, train, cluster);
    const auto results = sweepStrategies(
        model, train, cluster, PlanMethod::AdaPipe, withThreads(4));
    ASSERT_EQ(results.size(), strategies.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].par.tensor, strategies[i].tensor);
        EXPECT_EQ(results[i].par.pipeline, strategies[i].pipeline);
        EXPECT_EQ(results[i].par.data, strategies[i].data);
    }
}

TEST(SweepDeterminism, BestStrategyTieBreaksOnEnumerationOrder)
{
    const ModelConfig model = tinyTestModel();
    const ClusterSpec cluster = clusterA(1);
    TrainConfig train;
    train.seqLen = 512;
    train.globalBatch = 16;

    const auto results = sweepStrategies(
        model, train, cluster, PlanMethod::AdaPipe, withThreads(1));

    // Reference: first feasible result achieving the minimum time in
    // enumeration order (strict < never replaces an equal earlier
    // one).
    const StrategyResult *expected = nullptr;
    Seconds best_time = std::numeric_limits<double>::infinity();
    for (const StrategyResult &r : results) {
        if (r.result.ok && r.iterationTime() < best_time) {
            best_time = r.iterationTime();
            expected = &r;
        }
    }
    ASSERT_NE(expected, nullptr);

    for (unsigned workers : {1u, 2u, 4u, 0u}) {
        const auto best =
            bestStrategy(model, train, cluster, PlanMethod::AdaPipe,
                         withThreads(workers));
        ASSERT_TRUE(best.has_value());
        EXPECT_EQ(best->par.tensor, expected->par.tensor)
            << "threads=" << workers;
        EXPECT_EQ(best->par.pipeline, expected->par.pipeline)
            << "threads=" << workers;
        EXPECT_EQ(best->par.data, expected->par.data)
            << "threads=" << workers;
        EXPECT_EQ(best->iterationTime(), expected->iterationTime())
            << "threads=" << workers;
    }
}

TEST(SweepDeterminism, WorkersOutnumberingStrategiesIsSafe)
{
    // More workers than strategies: the interleaved assignment gives
    // some workers nothing to do; results must be complete anyway.
    const ModelConfig model = tinyTestModel();
    const ClusterSpec cluster = clusterA(1);
    TrainConfig train;
    train.seqLen = 512;
    train.globalBatch = 16;

    const auto serial = sweepStrategies(
        model, train, cluster, PlanMethod::AdaPipe, withThreads(1));
    const auto wide = sweepStrategies(
        model, train, cluster, PlanMethod::AdaPipe, withThreads(64));
    expectSameResults(serial, wide, "threads=64");
}

} // namespace
} // namespace adapipe
