/**
 * @file
 * Unit tests for the model module: parameter counts, layer sequence
 * construction and computation-unit workloads.
 */

#include <gtest/gtest.h>

#include "model/model_config.h"
#include "model/parallel.h"
#include "model/units.h"

namespace adapipe {
namespace {

TEST(ModelConfig, Gpt3ParamCount)
{
    const ModelConfig m = gpt3_175b();
    m.validate();
    // GPT-3 has ~175 billion parameters.
    const double total = static_cast<double>(m.totalParams());
    EXPECT_GT(total, 173e9);
    EXPECT_LT(total, 178e9);
}

TEST(ModelConfig, Llama2ParamCount)
{
    const ModelConfig m = llama2_70b();
    m.validate();
    const double total = static_cast<double>(m.totalParams());
    EXPECT_GT(total, 67e9);
    EXPECT_LT(total, 72e9);
}

TEST(ModelConfig, GqaShrinksAttention)
{
    ModelConfig gqa = llama2_70b();
    ModelConfig mha = gqa;
    mha.numKvHeads = mha.numHeads;
    EXPECT_LT(gqa.attentionParams(), mha.attentionParams());
    EXPECT_EQ(gqa.kvProjSize(), 8 * gqa.headDim());
}

TEST(ModelConfig, TotalIsSumOfLayers)
{
    const ModelConfig m = gpt3_13b();
    const std::uint64_t expected =
        m.embeddingParams() + m.decodingHeadParams() +
        static_cast<std::uint64_t>(m.numBlocks) *
            (m.attentionParams() + m.feedForwardParams());
    EXPECT_EQ(m.totalParams(), expected);
}

TEST(ModelConfig, MidSizePresets)
{
    const ModelConfig g67 = gpt3_6_7b();
    g67.validate();
    EXPECT_NEAR(static_cast<double>(g67.totalParams()), 6.7e9,
                0.5e9);
    const ModelConfig l13 = llama2_13b();
    l13.validate();
    EXPECT_NEAR(static_cast<double>(l13.totalParams()), 13e9,
                0.7e9);
    const ModelConfig bert = bertLarge();
    bert.validate();
    EXPECT_FALSE(bert.causal);
}

TEST(ModelConfig, CausalHalvesAttentionFlops)
{
    TrainConfig train;
    train.seqLen = 512;
    ParallelConfig par;
    par.tensor = 2;

    ModelConfig causal = bertLarge();
    causal.causal = true;
    const auto dec = buildLayerSequence(causal, train, par);
    const auto enc = buildLayerSequence(bertLarge(), train, par);

    auto flash_flops = [](const Layer &l) {
        for (const auto &u : l.units) {
            if (u.kind == UnitKind::FlashAttention)
                return u.flopsFwd;
        }
        return 0.0;
    };
    EXPECT_NEAR(flash_flops(enc[1]) / flash_flops(dec[1]), 2.0, 1e-9);
}

TEST(TrainConfig, MicroBatchCount)
{
    TrainConfig train;
    train.microBatch = 1;
    train.globalBatch = 128;
    ParallelConfig par;
    par.data = 2;
    EXPECT_EQ(train.microBatches(par), 64);
    par.data = 1;
    EXPECT_EQ(train.microBatches(par), 128);
}

TEST(ParallelConfig, ToString)
{
    ParallelConfig par;
    par.tensor = 4;
    par.pipeline = 8;
    par.data = 2;
    EXPECT_EQ(par.toString(), "(4, 8, 2)");
    EXPECT_EQ(par.totalDevices(), 64);
}

class LayerSequenceTest : public ::testing::Test
{
  protected:
    ModelConfig model = tinyTestModel();
    TrainConfig train;
    ParallelConfig par;

    void
    SetUp() override
    {
        train.microBatch = 1;
        train.seqLen = 128;
        par.tensor = 2;
    }
};

TEST_F(LayerSequenceTest, StructureIsEmbedBlocksHead)
{
    const auto layers = buildLayerSequence(model, train, par);
    ASSERT_EQ(layers.size(),
              static_cast<std::size_t>(2 * model.numBlocks + 2));
    EXPECT_EQ(layers.front().kind, LayerKind::Embedding);
    EXPECT_EQ(layers.back().kind, LayerKind::DecodingHead);
    for (int b = 0; b < model.numBlocks; ++b) {
        EXPECT_EQ(layers[1 + 2 * b].kind, LayerKind::Attention);
        EXPECT_EQ(layers[2 + 2 * b].kind, LayerKind::FeedForward);
    }
}

TEST_F(LayerSequenceTest, LayerParamsSumToModelTotal)
{
    const auto layers = buildLayerSequence(model, train, par);
    std::uint64_t total = 0;
    for (const auto &l : layers)
        total += l.params;
    EXPECT_EQ(total, model.totalParams());
}

TEST_F(LayerSequenceTest, AlwaysSavedRestriction)
{
    const auto layers = buildLayerSequence(model, train, par);
    for (const auto &layer : layers) {
        if (layer.kind == LayerKind::Attention ||
            layer.kind == LayerKind::FeedForward) {
            // Sec. 4.2: the layer's last unit (output GEMM) is
            // always saved; interior units are not.
            EXPECT_TRUE(layer.units.back().alwaysSaved)
                << "layer " << layer.index;
            for (std::size_t u = 0; u + 1 < layer.units.size(); ++u) {
                EXPECT_FALSE(layer.units[u].alwaysSaved)
                    << "layer " << layer.index << " unit " << u;
            }
        }
    }
}

TEST_F(LayerSequenceTest, FlashAttentionRemovesQuadraticMemory)
{
    par.flashAttention = true;
    const auto flash = buildLayerSequence(model, train, par);
    par.flashAttention = false;
    const auto unfused = buildLayerSequence(model, train, par);

    // The attention layer has strictly more saved bytes without
    // flash attention (the s^2 score/softmax tensors).
    const auto &fa = flash[1];
    const auto &uf = unfused[1];
    ASSERT_EQ(fa.kind, LayerKind::Attention);
    EXPECT_GT(uf.memSavedAll(), fa.memSavedAll());
    EXPECT_GT(uf.units.size(), fa.units.size());
}

TEST_F(LayerSequenceTest, TensorParallelShrinksActivations)
{
    par.tensor = 1;
    const auto t1 = buildLayerSequence(model, train, par);
    par.tensor = 2;
    const auto t2 = buildLayerSequence(model, train, par);
    EXPECT_GT(t1[1].memSavedAll(), t2[1].memSavedAll());
    EXPECT_GT(t1[2].memSavedAll(), t2[2].memSavedAll());
}

TEST_F(LayerSequenceTest, SequenceLengthScalesMemoryLinearly)
{
    train.seqLen = 128;
    const auto s128 = buildLayerSequence(model, train, par);
    train.seqLen = 256;
    const auto s256 = buildLayerSequence(model, train, par);
    const double ratio =
        static_cast<double>(s256[2].memSavedAll()) /
        static_cast<double>(s128[2].memSavedAll());
    EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST_F(LayerSequenceTest, AttentionFlopsQuadraticInSeq)
{
    train.seqLen = 128;
    const auto s1 = buildLayerSequence(model, train, par);
    train.seqLen = 256;
    const auto s2 = buildLayerSequence(model, train, par);
    // Find the flash attention unit.
    auto flash_flops = [](const Layer &l) {
        for (const auto &u : l.units) {
            if (u.kind == UnitKind::FlashAttention)
                return u.flopsFwd;
        }
        return 0.0;
    };
    EXPECT_NEAR(flash_flops(s2[1]) / flash_flops(s1[1]), 4.0, 0.01);
}

TEST_F(LayerSequenceTest, GatedFfnHasExtraUnit)
{
    model.gatedFfn = false;
    const auto plain = buildLayerSequence(model, train, par);
    model.gatedFfn = true;
    const auto gated = buildLayerSequence(model, train, par);
    EXPECT_EQ(gated[2].units.size(), plain[2].units.size() + 1);
}

TEST_F(LayerSequenceTest, RejectsBadTensorParallel)
{
    par.tensor = 3; // does not divide 4 heads
    EXPECT_DEATH(buildLayerSequence(model, train, par),
                 "does not divide");
}

} // namespace
} // namespace adapipe
