/**
 * @file
 * Determinism stress tests for the parallel backward engine, built to
 * run under ThreadSanitizer: a wide fan-out graph differentiated 50
 * times across worker counts with every run's gradient bits compared
 * EXPECT_EQ to the single-threaded reference; checkpoint replay
 * driven from inside a multi-threaded backward (with the replay
 * counters and spans checked for monotonicity across recompute
 * modes); and full pipeline training runs whose per-step losses must
 * be bit-identical at every intra-stage thread count.
 *
 * Wide fan-out is the adversarial shape for a parallel reduction:
 * dozens of consumers finish in racy order and all deposit into one
 * leaf's buffer, so any arrival-order accumulation shows up as
 * flipped low bits within a handful of runs. The engine's preassigned
 * contribution slots must make all 50 runs produce the same floats.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "autograd/checkpoint.h"
#include "autograd/engine.h"
#include "autograd/module.h"
#include "autograd/ops.h"
#include "autograd/trainer.h"
#include "autograd/variable.h"
#include "obs/registry.h"
#include "runtime/pipeline_runtime.h"
#include "util/rng.h"

namespace adapipe {
namespace {

constexpr int kDim = 8;
constexpr int kFanOut = 48; // consumers of the single hot leaf

/**
 * One leaf consumed by kFanOut cheap unary branches, folded by a
 * pairwise add tree. Rebuilt per run (grads accumulate in place).
 */
struct FanOutGraph
{
    Variable leaf;
    Variable root;
    Tensor seed;
};

FanOutGraph
buildFanOut(std::uint64_t seed)
{
    Rng rng(seed);
    FanOutGraph g;
    g.leaf = Variable(Tensor::randn({kDim, kDim}, rng, 0.5f), true);

    std::vector<Variable> branches;
    branches.reserve(kFanOut);
    for (int i = 0; i < kFanOut; ++i) {
        switch (i % 4) {
          case 0:
            branches.push_back(ops::scale(
                g.leaf, static_cast<float>(rng.uniform(0.5, 1.5))));
            break;
          case 1: branches.push_back(ops::gelu(g.leaf)); break;
          case 2: branches.push_back(ops::silu(g.leaf)); break;
          default:
            branches.push_back(ops::mul(g.leaf, g.leaf));
            break;
        }
    }
    while (branches.size() > 1) {
        std::vector<Variable> next;
        for (std::size_t i = 0; i + 1 < branches.size(); i += 2)
            next.push_back(ops::add(branches[i], branches[i + 1]));
        if (branches.size() % 2 != 0)
            next.push_back(branches.back());
        branches = std::move(next);
    }
    g.root = branches.front();
    g.seed = Tensor::randn({kDim, kDim}, rng);
    return g;
}

TEST(EngineDeterminism, WideFanOutStableAcross50RunsAndThreadCounts)
{
    const std::uint64_t seed = 777;
    FanOutGraph ref = buildFanOut(seed);
    ref.root.backward(ref.seed);
    const std::vector<float> want = ref.leaf.grad().data();

    const int thread_counts[] = {2, 4, 8};
    int run = 0;
    for (int rep = 0; rep < 50; ++rep) {
        const int threads = thread_counts[rep % 3];
        FanOutGraph g = buildFanOut(seed);
        BackwardEngine engine(EngineOptions{threads});
        engine.run(g.root, g.seed);
        const std::vector<float> &got = g.leaf.grad().data();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(got[i], want[i])
                << "run " << run << " threads " << threads
                << " element " << i;
        }
        ++run;
    }
}

/** Per-parameter gradient bits of a model, leaf order. */
std::vector<std::vector<float>>
paramGradBits(const TinyLM &model)
{
    std::vector<std::vector<float>> out;
    for (const Variable &p : model.params())
        out.push_back(p.grad().data());
    return out;
}

/**
 * Backward of one tiny-LM loss under an engine, with obs recording.
 * @return replay counter observed by the caller's registry.
 */
std::int64_t
lossBackward(int threads, BlockRecompute mode, obs::Registry &reg,
             std::vector<std::vector<float>> &grads_out)
{
    TinyLmConfig cfg;
    cfg.vocab = 17;
    cfg.dim = 12;
    cfg.blocks = 2;
    cfg.ffnHidden = 20;
    cfg.maxSeq = 8;
    cfg.seed = 5;
    TinyLM model(cfg);

    std::vector<int> tokens, targets;
    makeBigramBatch(cfg.vocab, cfg.maxSeq, /*step=*/0, /*seed=*/3,
                    tokens, targets);

    obs::ScopedRegistry scoped(&reg);
    const std::vector<BlockRecompute> modes(
        static_cast<std::size_t>(cfg.blocks), mode);
    Variable loss = model.loss(tokens, targets, modes);
    BackwardEngine engine(EngineOptions{threads});
    engine.run(loss, Tensor::full({1}, 1.0f));
    grads_out = paramGradBits(model);
    return reg.counter("checkpoint.replays");
}

TEST(EngineDeterminism, CheckpointReplayUnderParallelBackward)
{
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::AttentionOnly,
                                    BlockRecompute::Full};
    std::vector<std::int64_t> replays_parallel;
    for (const BlockRecompute mode : modes) {
        obs::Registry ref_reg;
        std::vector<std::vector<float>> want;
        const std::int64_t ref_replays =
            lossBackward(1, mode, ref_reg, want);

        obs::Registry par_reg;
        std::vector<std::vector<float>> got;
        const std::int64_t par_replays =
            lossBackward(4, mode, par_reg, got);

        // Replay work is identical — the engine merges its helpers'
        // scratch registries after quiescence, so no count is lost.
        EXPECT_EQ(par_replays, ref_replays);
        std::size_t ref_spans = 0, par_spans = 0;
        for (const obs::SpanRecord &s : ref_reg.spans())
            ref_spans += s.name == "checkpoint.replay" ? 1 : 0;
        for (const obs::SpanRecord &s : par_reg.spans())
            par_spans += s.name == "checkpoint.replay" ? 1 : 0;
        EXPECT_EQ(static_cast<std::int64_t>(ref_spans), ref_replays);
        EXPECT_EQ(static_cast<std::int64_t>(par_spans), par_replays);

        ASSERT_EQ(got.size(), want.size());
        for (std::size_t p = 0; p < want.size(); ++p) {
            ASSERT_EQ(got[p].size(), want[p].size()) << "param " << p;
            for (std::size_t i = 0; i < want[p].size(); ++i) {
                ASSERT_EQ(got[p][i], want[p][i])
                    << "param " << p << " element " << i;
            }
        }
        replays_parallel.push_back(par_replays);
    }
    // Monotone over the recompute ladder: saving everything replays
    // nothing; attention-only replays some; full replays at least as
    // much again.
    EXPECT_EQ(replays_parallel[0], 0);
    EXPECT_GT(replays_parallel[1], 0);
    EXPECT_GE(replays_parallel[2], replays_parallel[1]);
}

TEST(EngineDeterminism, PipelineLossesBitIdenticalAcrossThreadCounts)
{
    TinyLmConfig cfg;
    cfg.vocab = 19;
    cfg.dim = 12;
    cfg.blocks = 4;
    cfg.ffnHidden = 20;
    cfg.maxSeq = 8;
    cfg.seed = 11;

    RuntimeOptions opts;
    opts.steps = 2;
    opts.seqLen = 8;
    opts.microBatches = 2;

    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        for (const int virtual_stages : {1, 2}) {
            const std::vector<StageSpec> specs =
                evenStageSpecs(cfg.blocks, 2 * virtual_stages, mode);

            std::vector<double> want;
            for (const int threads : {1, 2, 4}) {
                TinyLM model(cfg);
                RuntimeOptions run_opts = opts;
                run_opts.virtualStages = virtual_stages;
                run_opts.intraStageThreads = threads;
                const RuntimeResult run =
                    runPipeline(model, specs, run_opts);
                ASSERT_TRUE(run.ok) << run.error;
                if (threads == 1) {
                    want = run.losses;
                    ASSERT_FALSE(want.empty());
                    continue;
                }
                ASSERT_EQ(run.losses.size(), want.size());
                for (std::size_t s = 0; s < want.size(); ++s) {
                    EXPECT_EQ(run.losses[s], want[s])
                        << "threads " << threads << " v "
                        << virtual_stages << " step " << s;
                }
            }
        }
    }
}

TEST(EngineDeterminism, ExceptionsPropagateAfterQuiescence)
{
    // A backward function that throws must surface on the caller
    // after all workers park — not crash a helper thread — and the
    // engine must stay usable for the next run.
    Rng bad_rng(1);
    Variable a(Tensor::randn({4, 4}, bad_rng, 0.5f), true);
    Variable bad = Variable::makeNode(
        Tensor(a.value()), {a},
        [](Variable::Impl &) -> autograd_detail::BackwardResult {
            throw std::runtime_error("injected backward failure");
        });

    BackwardEngine engine(EngineOptions{4});
    EXPECT_THROW(
        engine.run(bad, Tensor::full(bad.value().shape(), 1.0f)),
        std::runtime_error);

    // Engine survives: a healthy graph still differentiates.
    Rng rng(2);
    Variable x(Tensor::randn({4, 4}, rng, 0.5f), true);
    Variable y = ops::gelu(x);
    engine.run(y, Tensor::full(y.value().shape(), 1.0f));
    EXPECT_GT(x.grad().numel(), 0);
}

} // namespace
} // namespace adapipe
