/**
 * @file
 * Randomized malformed-input tests for the recoverable parse paths:
 * the JSON parser, the plan/profile loaders and the fault-spec
 * loader. Every mutation of a valid document must come back as a
 * ParseResult error (never an abort), and targeted corruptions must
 * name the offending field.
 *
 * The sweep seed is fixed; set ADAPIPE_FUZZ_SEED to explore other
 * seeds locally (failures print the seed for replay).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/plan_io.h"
#include "hw/profile_io.h"
#include "robust/fault_spec.h"
#include "robust/replan_io.h"
#include "runtime/fault_injector.h"
#include "runtime/snapshot.h"
#include "service/handlers.h"
#include "service/protocol.h"
#include "util/json.h"
#include "util/rng.h"

namespace adapipe {
namespace {

const char *const kValidPlan = R"({
  "method": "adapipe",
  "parallel": {"tensor": 1, "pipeline": 2, "data": 1,
               "sequence_parallel": true, "flash_attention": true},
  "train": {"micro_batch": 1, "seq_len": 128, "global_batch": 4},
  "micro_batches": 4,
  "overlap": true,
  "offload": true,
  "timing": {"warmup": 1.0, "ending": 1.0, "steady_per_mb": 0.5,
             "total": 4.0},
  "stages": [
    {"first_layer": 0, "last_layer": 1, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 2, "saved_mask": [true, false],
     "overlap_bubble": 0.25, "replay_hidden": 0.05,
     "replay_critical": 0.0,
     "offload_mask": [false, true], "offload_bytes": 4096,
     "offload_fetch_us": 12.5},
    {"first_layer": 2, "last_layer": 3, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 2, "saved_mask": [true, false]}
  ]
})";

const char *const kValidProfile = R"({
  "source": "test",
  "layers": [
    [{"name": "ln", "kind": "layernorm", "time_fwd": 0.1,
      "time_bwd": 0.2, "mem_saved": 100, "always_saved": false}],
    [{"name": "qkv", "kind": "gemm", "time_fwd": 0.3,
      "time_bwd": 0.6, "mem_saved": 300, "always_saved": true}]
  ]
})";

const char *const kValidFault = R"({
  "seed": 7,
  "slowdowns": [{"device": 1, "factor": 1.5}],
  "stalls": {"probability": 0.1, "base": 0.01, "max_retries": 2},
  "p2p_jitter": 0.2,
  "failure": {"device": -1, "at": 0.0}
})";

std::uint64_t
fuzzSeed()
{
    if (const char *env = std::getenv("ADAPIPE_FUZZ_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 0xADA71FE5EEDull;
}

/** Parse one document through every recoverable loader. */
void
expectNoAbort(const std::string &text)
{
    const ParseResult<JsonValue> doc = JsonValue::tryParse(text);
    if (!doc.ok()) {
        EXPECT_FALSE(doc.error().empty());
    }
    const ParseResult<PipelinePlan> plan = tryPlanFromJsonString(text);
    if (!plan.ok()) {
        EXPECT_FALSE(plan.error().empty());
    }
    const ParseResult<ProfileTable> table =
        tryProfileTableFromJsonString(text);
    if (!table.ok()) {
        EXPECT_FALSE(table.error().empty());
    }
    const ParseResult<FaultSpec> fault =
        faultSpecFromJsonString(text);
    if (!fault.ok()) {
        EXPECT_FALSE(fault.error().empty());
    }
}

TEST(ParseFuzz, BaseDocumentsAreValid)
{
    EXPECT_TRUE(tryPlanFromJsonString(kValidPlan).ok());
    EXPECT_TRUE(tryProfileTableFromJsonString(kValidProfile).ok());
    EXPECT_TRUE(faultSpecFromJsonString(kValidFault).ok());
}

TEST(ParseFuzz, TruncationsNeverAbort)
{
    const std::string docs[] = {kValidPlan, kValidProfile,
                                kValidFault};
    for (const std::string &doc : docs) {
        for (std::size_t cut = 0; cut < doc.size();
             cut += 7) { // every 7th prefix keeps the sweep fast
            const std::string prefix = doc.substr(0, cut);
            expectNoAbort(prefix);
            // A strict prefix of a JSON document is never valid.
            EXPECT_FALSE(JsonValue::tryParse(prefix).ok())
                << "cut at " << cut;
        }
    }
}

TEST(ParseFuzz, RandomMutationsNeverAbort)
{
    const std::uint64_t seed = fuzzSeed();
    SCOPED_TRACE("ADAPIPE_FUZZ_SEED=" + std::to_string(seed));
    Rng rng(seed);
    const std::string docs[] = {kValidPlan, kValidProfile,
                                kValidFault};
    const std::string charset =
        "{}[]\",:0123456789.eE+-truefalsnul \n\x01\x7f";
    for (int trial = 0; trial < 600; ++trial) {
        std::string doc =
            docs[static_cast<std::size_t>(rng.uniformInt(0, 2))];
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(doc.size()) - 1));
            switch (rng.uniformInt(0, 2)) {
              case 0: // overwrite
                doc[pos] = charset[static_cast<std::size_t>(
                    rng.uniformInt(
                        0,
                        static_cast<std::int64_t>(charset.size()) -
                            1))];
                break;
              case 1: // delete
                doc.erase(pos, 1);
                break;
              default: // duplicate a span
                doc.insert(pos, doc.substr(
                                    pos,
                                    static_cast<std::size_t>(
                                        rng.uniformInt(1, 12))));
                break;
            }
        }
        expectNoAbort(doc);
    }
}

TEST(ParseFuzz, DuplicateKeysAreRejectedByName)
{
    const ParseResult<JsonValue> r = JsonValue::tryParse(
        R"({"a": 1, "b": 2, "a": 3})");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("duplicate key 'a'"), std::string::npos)
        << r.error();
}

TEST(ParseFuzz, WrongTypesNameTheField)
{
    struct Case
    {
        const char *base;
        const char *needle;     // substring to corrupt
        const char *replacement;
        const char *expected;   // field path in the error
    };
    const Case cases[] = {
        {kValidPlan, "\"mem_peak\": 1000", "\"mem_peak\": \"big\"",
         "mem_peak"},
        {kValidPlan, "\"method\": \"adapipe\"", "\"method\": 42",
         "plan.method"},
        {kValidPlan, "\"pipeline\": 2", "\"pipeline\": 2.5",
         "plan.parallel.pipeline"},
        {kValidPlan, "\"saved_mask\": [true, false]",
         "\"saved_mask\": [true]", "saved_mask"},
        {kValidPlan, "\"overlap\": true", "\"overlap\": 42",
         "overlap"},
        {kValidPlan, "\"overlap_bubble\": 0.25",
         "\"overlap_bubble\": -1", "overlap_bubble"},
        {kValidPlan, "\"replay_hidden\": 0.05",
         "\"replay_hidden\": \"lots\"", "replay_hidden"},
        {kValidPlan, "\"replay_critical\": 0.0",
         "\"replay_critical\": -0.1", "replay_critical"},
        {kValidPlan, "\"offload\": true", "\"offload\": 42",
         "offload"},
        {kValidPlan, "\"offload_mask\": [false, true]",
         "\"offload_mask\": [false]", "offload_mask"},
        {kValidPlan, "\"offload_mask\": [false, true]",
         "\"offload_mask\": [false, 7]", "offload_mask"},
        {kValidPlan, "\"offload_bytes\": 4096",
         "\"offload_bytes\": -1", "offload_bytes"},
        {kValidPlan, "\"offload_bytes\": 4096",
         "\"offload_bytes\": \"many\"", "offload_bytes"},
        {kValidPlan, "\"offload_bytes\": 4096",
         "\"offload_bytes\": 9999999999999999999999999",
         "offload_bytes"},
        {kValidPlan, "\"offload_fetch_us\": 12.5",
         "\"offload_fetch_us\": -2", "offload_fetch_us"},
        {kValidPlan, "\"offload_fetch_us\": 12.5",
         "\"offload_fetch_us\": [1]", "offload_fetch_us"},
        {kValidProfile, "\"kind\": \"gemm\"", "\"kind\": \"magic\"",
         "profile.layers[1][0].kind"},
        {kValidProfile, "\"time_fwd\": 0.3", "\"time_fwd\": -0.3",
         "profile.layers[1][0].time_fwd"},
        {kValidFault, "\"factor\": 1.5", "\"factor\": true",
         "fault.slowdowns[0].factor"},
    };
    for (const Case &c : cases) {
        std::string doc = c.base;
        const std::size_t pos = doc.find(c.needle);
        ASSERT_NE(pos, std::string::npos) << c.needle;
        doc.replace(pos, std::string(c.needle).size(), c.replacement);

        std::string error;
        if (c.base == kValidPlan) {
            const auto r = tryPlanFromJsonString(doc);
            ASSERT_FALSE(r.ok()) << c.expected;
            error = r.error();
        } else if (c.base == kValidProfile) {
            const auto r = tryProfileTableFromJsonString(doc);
            ASSERT_FALSE(r.ok()) << c.expected;
            error = r.error();
        } else {
            const auto r = faultSpecFromJsonString(doc);
            ASSERT_FALSE(r.ok()) << c.expected;
            error = r.error();
        }
        EXPECT_NE(error.find(c.expected), std::string::npos)
            << "error was: " << error;
    }
}

TEST(ParseFuzz, OverflowNumeralsNeverAbort)
{
    // Out-of-range numerals used to flow into bare std::stoll /
    // std::stod, whose uncaught std::out_of_range aborted the
    // process. They must come back as ParseResult errors (or, for
    // integers too wide for int64 inside a double-typed field,
    // as an ordinary double) — never an abort.
    const char *const numerals[] = {
        "1e999",  "-1e999",  "1e308999",
        "9999999999999999999999999",
        "-9999999999999999999999999",
        "9223372036854775808",   // INT64_MAX + 1
        "-9223372036854775809",  // INT64_MIN - 1
        "1e-999",                // underflow: harmless, must parse
    };
    for (const char *n : numerals) {
        expectNoAbort(n);
        expectNoAbort(std::string("{\"seed\": ") + n + "}");
        std::string plan = kValidPlan;
        const std::size_t pos = plan.find("\"mem_peak\": 1000");
        ASSERT_NE(pos, std::string::npos);
        plan.replace(pos, std::string("\"mem_peak\": 1000").size(),
                     std::string("\"mem_peak\": ") + n);
        expectNoAbort(plan);
    }

    // Magnitude overflow is a parse error at the JSON level...
    EXPECT_FALSE(JsonValue::tryParse("1e999").ok());
    EXPECT_FALSE(JsonValue::tryParse("-1e999").ok());
    // ...while underflow quietly rounds to zero,
    const auto tiny = JsonValue::tryParse("1e-999");
    ASSERT_TRUE(tiny.ok());
    EXPECT_EQ(tiny.value().asNumber(), 0.0);
    // ...and an integer numeral wider than int64 degrades to a
    // double, so integer-typed fields reject it by name.
    const auto wide =
        JsonValue::tryParse("9999999999999999999999999");
    ASSERT_TRUE(wide.ok());
    std::string plan = kValidPlan;
    const std::size_t pos = plan.find("\"micro_batches\": 4");
    ASSERT_NE(pos, std::string::npos);
    plan.replace(pos, std::string("\"micro_batches\": 4").size(),
                 "\"micro_batches\": 9999999999999999999999999");
    const auto r = tryPlanFromJsonString(plan);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("micro_batches"), std::string::npos)
        << r.error();
}

TEST(ParseFuzz, VirtualStagesFieldIsValidatedByName)
{
    // Legacy plans carry no virtual_stages field: they parse as
    // plain 1F1B plans (v = 1).
    const ParseResult<PipelinePlan> legacy =
        tryPlanFromJsonString(kValidPlan);
    ASSERT_TRUE(legacy.ok()) << legacy.error();
    EXPECT_EQ(legacy.value().virtualStages, 1);

    auto with_field = [](const char *value) {
        std::string doc = kValidPlan;
        const std::string needle = "\"micro_batches\": 4,";
        const std::size_t pos = doc.find(needle);
        EXPECT_NE(pos, std::string::npos);
        doc.insert(pos + needle.size(), std::string("\n  "
                                                    "\"virtual_"
                                                    "stages\": ") +
                                            value + ",");
        return doc;
    };

    // An explicit v = 1 is the same plan.
    const auto v1 = tryPlanFromJsonString(with_field("1"));
    ASSERT_TRUE(v1.ok()) << v1.error();
    EXPECT_EQ(v1.value().virtualStages, 1);

    // v = 2 with only pipeline * 1 stages: the count check names
    // both fields of the product it enforces.
    const auto mismatched = tryPlanFromJsonString(with_field("2"));
    ASSERT_FALSE(mismatched.ok());
    EXPECT_NE(mismatched.error().find("parallel.pipeline"),
              std::string::npos)
        << mismatched.error();
    EXPECT_NE(mismatched.error().find("virtual_stages"),
              std::string::npos)
        << mismatched.error();

    // v < 1, a wrong type, and an integer numeral wider than int64
    // are all recoverable errors naming the field.
    for (const char *bad : {"0", "-3", "\"two\"", "2.5",
                            "9999999999999999999999999"}) {
        const auto r = tryPlanFromJsonString(with_field(bad));
        ASSERT_FALSE(r.ok()) << bad;
        EXPECT_NE(r.error().find("virtual_stages"), std::string::npos)
            << "value " << bad << ": " << r.error();
    }

    // A duplicate virtual_stages key is caught by the JSON layer.
    std::string dup = with_field("1");
    const std::size_t pos = dup.find("\"micro_batches\": 4,");
    ASSERT_NE(pos, std::string::npos);
    dup.insert(pos, "\"virtual_stages\": 2,\n  ");
    const auto r = tryPlanFromJsonString(dup);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("duplicate key 'virtual_stages'"),
              std::string::npos)
        << r.error();

    // A matching interleaved plan (p = 2, v = 2, 4 stages) parses.
    std::string good = with_field("2");
    const std::string tail =
        R"(    {"first_layer": 2, "last_layer": 3, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 2, "saved_mask": [true, false]}
  ]
})";
    const std::size_t tail_pos = good.rfind(tail);
    ASSERT_NE(tail_pos, std::string::npos);
    good.replace(
        tail_pos, tail.size(),
        R"(    {"first_layer": 2, "last_layer": 2, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 1, "saved_mask": [true]},
    {"first_layer": 3, "last_layer": 3, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 1, "saved_mask": [true]},
    {"first_layer": 4, "last_layer": 4, "time_fwd": 0.1,
     "time_bwd": 0.2, "mem_peak": 1000, "saved_units": 1,
     "total_units": 1, "saved_mask": [true]}
  ]
})");
    const auto parsed = tryPlanFromJsonString(good);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().virtualStages, 2);
    EXPECT_EQ(parsed.value().stages.size(), 4u);
}

TEST(ParseFuzz, OffloadFieldsAreOptionalButConsistent)
{
    // Legacy compatibility: a plan with none of the offload_* fields
    // parses as a keep/recompute-only plan.
    std::string legacy = kValidPlan;
    for (const char *field :
         {"\n  \"offload\": true,",
          ",\n     \"offload_mask\": [false, true], "
          "\"offload_bytes\": 4096,\n"
          "     \"offload_fetch_us\": 12.5"}) {
        const std::size_t pos = legacy.find(field);
        ASSERT_NE(pos, std::string::npos) << field;
        legacy.erase(pos, std::string(field).size());
    }
    const auto plain = tryPlanFromJsonString(legacy);
    ASSERT_TRUE(plain.ok()) << plain.error();
    EXPECT_FALSE(plain.value().offload);
    EXPECT_TRUE(plain.value().stages[0].offloadMask.empty());
    EXPECT_EQ(plain.value().stages[0].offloadBytes, 0u);

    // A unit marked both saved and offloaded is contradictory — the
    // loader must name the unit.
    std::string conflict = kValidPlan;
    const std::string needle = "\"offload_mask\": [false, true]";
    const std::size_t pos = conflict.find(needle);
    ASSERT_NE(pos, std::string::npos);
    conflict.replace(pos, needle.size(),
                     "\"offload_mask\": [true, true]");
    const auto r = tryPlanFromJsonString(conflict);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("unit 0 is both saved and offloaded"),
              std::string::npos)
        << r.error();

    // A duplicate offload_mask key is caught by the JSON layer.
    std::string dup = kValidPlan;
    const std::size_t mask_pos = dup.find("\"offload_mask\"");
    ASSERT_NE(mask_pos, std::string::npos);
    dup.insert(mask_pos, "\"offload_mask\": [false, false], ");
    const auto d = tryPlanFromJsonString(dup);
    ASSERT_FALSE(d.ok());
    EXPECT_NE(d.error().find("duplicate key 'offload_mask'"),
              std::string::npos)
        << d.error();
}

TEST(ParseFuzz, MissingFieldsNameTheField)
{
    std::string doc = kValidPlan;
    const std::size_t pos = doc.find("\"micro_batches\": 4,");
    ASSERT_NE(pos, std::string::npos);
    doc.erase(pos, std::string("\"micro_batches\": 4,").size());
    const auto r = tryPlanFromJsonString(doc);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("missing required field 'micro_batches'"),
              std::string::npos)
        << r.error();
}

const char *const kValidRuntimeFault = R"({
  "seed": 7,
  "slowdowns": [{"worker": 1, "factor": 1.5}],
  "stalls": {"probability": 0.1, "base": 0.01, "max_retries": 2},
  "send_delay": {"us": 100.0, "jitter": 0.25},
  "crash": {"worker": 1, "step": 3, "after_ops": 2, "hang": true}
})";

TEST(ParseFuzz, RuntimeFaultSpecBaseIsValid)
{
    const auto r =
        tryRuntimeFaultSpecFromJsonString(kValidRuntimeFault);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().crash.worker, 1);
    EXPECT_TRUE(r.value().crash.hang);
}

TEST(ParseFuzz, RuntimeFaultSpecCorruptionsNameTheField)
{
    struct Case
    {
        const char *needle;
        const char *replacement;
        const char *expected;
    };
    const Case cases[] = {
        {"\"factor\": 1.5", "\"factor\": 0.5",
         "runtime_fault.slowdowns[0].factor"},
        {"\"worker\": 1,", "\"worker\": -2,",
         "runtime_fault.slowdowns[0].worker"},
        {"\"probability\": 0.1", "\"probability\": 1.5",
         "runtime_fault.stalls.probability"},
        {"\"us\": 100.0", "\"us\": -1",
         "runtime_fault.send_delay.us"},
        {"\"after_ops\": 2", "\"after_ops\": -2",
         "runtime_fault.crash.after_ops"},
        {"\"hang\": true", "\"hang\": 3",
         "runtime_fault.crash.hang"},
    };
    for (const Case &c : cases) {
        std::string doc = kValidRuntimeFault;
        const std::size_t pos = doc.find(c.needle);
        ASSERT_NE(pos, std::string::npos) << c.needle;
        doc.replace(pos, std::string(c.needle).size(),
                    c.replacement);
        const auto r = tryRuntimeFaultSpecFromJsonString(doc);
        ASSERT_FALSE(r.ok()) << c.expected;
        EXPECT_NE(r.error().find(c.expected), std::string::npos)
            << "error was: " << r.error();
    }
}

TEST(ParseFuzz, RuntimeFaultSpecMutationsNeverAbort)
{
    const std::uint64_t seed = fuzzSeed();
    SCOPED_TRACE("ADAPIPE_FUZZ_SEED=" + std::to_string(seed));
    Rng rng(seed ^ 0xFA17);
    for (int trial = 0; trial < 300; ++trial) {
        std::string doc = kValidRuntimeFault;
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(doc.size()) - 1));
            if (rng.uniformInt(0, 1) == 0)
                doc[pos] = static_cast<char>(rng.uniformInt(1, 127));
            else
                doc.erase(pos, 1);
        }
        const auto r = tryRuntimeFaultSpecFromJsonString(doc);
        if (!r.ok()) {
            EXPECT_FALSE(r.error().empty());
        }
    }
}

/** A small but fully populated snapshot byte image. */
std::string
validSnapshotBytes()
{
    TinyLmConfig cfg;
    cfg.vocab = 16;
    cfg.dim = 8;
    cfg.blocks = 2;
    cfg.ffnHidden = 16;
    cfg.maxSeq = 16;
    cfg.seed = 1;
    const TinyLM model(cfg);
    return snapshotToBytes(captureTrainingSnapshot(
        model, {}, /*step=*/3, /*data_seed=*/7, /*use_adam=*/true));
}

/** Split a snapshot image into (pre-header, header, blob). */
void
splitSnapshot(const std::string &bytes, std::string &pre,
              std::string &header, std::string &blob)
{
    // ADAPIPESNAP1\n<len>\n<header><blob>
    const std::size_t magic_end = bytes.find('\n') + 1;
    const std::size_t len_end = bytes.find('\n', magic_end);
    const std::size_t header_len = static_cast<std::size_t>(
        std::strtoull(bytes.c_str() + magic_end, nullptr, 10));
    pre = bytes.substr(0, len_end + 1);
    header = bytes.substr(len_end + 1, header_len);
    blob = bytes.substr(len_end + 1 + header_len);
}

/** Reassemble with a corrected header-length line. */
std::string
joinSnapshot(const std::string &header, const std::string &blob)
{
    return std::string("ADAPIPESNAP1\n") +
           std::to_string(header.size()) + "\n" + header + blob;
}

TEST(SnapshotFuzz, BaseImageIsValid)
{
    const std::string bytes = validSnapshotBytes();
    const auto r = snapshotFromBytes(bytes);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().step, 3);
    EXPECT_EQ(snapshotToBytes(r.value()), bytes);
}

TEST(SnapshotFuzz, TruncationsNeverAbort)
{
    const std::string bytes = validSnapshotBytes();
    for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
        const auto r = snapshotFromBytes(bytes.substr(0, cut));
        ASSERT_FALSE(r.ok()) << "cut at " << cut;
        EXPECT_FALSE(r.error().empty()) << "cut at " << cut;
    }
}

TEST(SnapshotFuzz, VersionSkewIsRejectedByName)
{
    std::string pre, header, blob;
    splitSnapshot(validSnapshotBytes(), pre, header, blob);
    const std::size_t key = header.find("\"version\"");
    ASSERT_NE(key, std::string::npos);
    const std::size_t digit = header.find('1', key);
    ASSERT_NE(digit, std::string::npos);
    header[digit] = '2';
    const auto r = snapshotFromBytes(joinSnapshot(header, blob));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("unsupported snapshot version 2"),
              std::string::npos)
        << r.error();
}

TEST(SnapshotFuzz, DuplicateHeaderKeysAreRejected)
{
    std::string pre, header, blob;
    splitSnapshot(validSnapshotBytes(), pre, header, blob);
    const std::size_t brace = header.rfind('}');
    ASSERT_NE(brace, std::string::npos);
    header.insert(brace, ",\"version\":2");
    const auto r = snapshotFromBytes(joinSnapshot(header, blob));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("duplicate key 'version'"),
              std::string::npos)
        << r.error();
}

TEST(SnapshotFuzz, BlobLengthMismatchIsRejected)
{
    std::string pre, header, blob;
    splitSnapshot(validSnapshotBytes(), pre, header, blob);
    blob.resize(blob.size() - 4);
    const auto r = snapshotFromBytes(joinSnapshot(header, blob));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("blob length mismatch"),
              std::string::npos)
        << r.error();
}

TEST(SnapshotFuzz, FlippedBlobByteFailsTheChecksum)
{
    std::string pre, header, blob;
    splitSnapshot(validSnapshotBytes(), pre, header, blob);
    blob[blob.size() / 2] =
        static_cast<char>(blob[blob.size() / 2] ^ 0x40);
    const auto r = snapshotFromBytes(joinSnapshot(header, blob));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("blob checksum mismatch"),
              std::string::npos)
        << r.error();
}

TEST(SnapshotFuzz, RandomMutationsNeverAbort)
{
    const std::uint64_t seed = fuzzSeed();
    SCOPED_TRACE("ADAPIPE_FUZZ_SEED=" + std::to_string(seed));
    Rng rng(seed ^ 0x5A4B);
    const std::string base = validSnapshotBytes();
    for (int trial = 0; trial < 300; ++trial) {
        std::string bytes = base;
        const int edits = static_cast<int>(rng.uniformInt(1, 6));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(bytes.size()) - 1));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                bytes[pos] =
                    static_cast<char>(rng.uniformInt(0, 255));
                break;
              case 1:
                bytes.erase(pos, 1);
                break;
              default:
                bytes.insert(pos, 1,
                             static_cast<char>(
                                 rng.uniformInt(0, 255)));
                break;
            }
        }
        const auto r = snapshotFromBytes(bytes);
        if (!r.ok()) {
            EXPECT_FALSE(r.error().empty());
        }
    }
}

const char *const kValidServiceRequest = R"({
  "kind": "replan",
  "plan": {
    "model": "tiny-test",
    "cluster": {"name": "a", "nodes": 1},
    "train": {"micro_batch": 1, "seq_len": 128, "global_batch": 8},
    "parallel": {"tensor": 1, "pipeline": 2, "data": 1},
    "method": "adapipe",
    "schedule": {"family": "1f1b"},
    "mem_budget_fraction": 0.875,
    "offload": {"enabled": true, "bandwidth": 25000000000.0,
                "overlap_fraction": 0.5}
  },
  "fault": {"straggler_stage": 0, "straggler_factor": 2.0,
            "mem_factor": 1.0, "lost_stages": 0,
            "host_link_factor": 0.5}
})";

TEST(ServiceFuzz, BaseRequestIsValid)
{
    const auto r =
        tryServiceRequestFromJsonString(kValidServiceRequest);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().kind, RequestKind::Replan);
    EXPECT_EQ(r.value().plan.model, "tiny-test");
    EXPECT_EQ(r.value().fault.stragglerStage, 0);
}

TEST(ServiceFuzz, TruncationsNeverAbort)
{
    const std::string doc = kValidServiceRequest;
    for (std::size_t cut = 0; cut < doc.size(); cut += 5) {
        const auto r =
            tryServiceRequestFromJsonString(doc.substr(0, cut));
        ASSERT_FALSE(r.ok()) << "cut at " << cut;
        EXPECT_FALSE(r.error().empty()) << "cut at " << cut;
    }
}

TEST(ServiceFuzz, UnknownRequestKindsAreRejectedByName)
{
    for (const char *kind :
         {"", "Plan", "PLAN", "plans", "replan ", "query", "halt"}) {
        const std::string line =
            std::string("{\"kind\": \"") + kind + "\"}";
        const auto r = tryServiceRequestFromJsonString(line);
        ASSERT_FALSE(r.ok()) << line;
        EXPECT_NE(r.error().find("service.kind"), std::string::npos)
            << "kind '" << kind << "': " << r.error();
        EXPECT_NE(r.error().find("unknown request kind"),
                  std::string::npos)
            << "kind '" << kind << "': " << r.error();
    }
}

TEST(ServiceFuzz, DuplicateKeysAreRejected)
{
    const auto r = tryServiceRequestFromJsonString(
        R"({"kind": "stats", "kind": "shutdown"})");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("duplicate key 'kind'"),
              std::string::npos)
        << r.error();
}

TEST(ServiceFuzz, FieldCorruptionsNameTheField)
{
    struct Case
    {
        const char *needle;
        const char *replacement;
        const char *expected;
    };
    const Case cases[] = {
        {"\"model\": \"tiny-test\"", "\"model\": \"huge\"",
         "service.plan.model"},
        {"\"name\": \"a\"", "\"name\": \"c\"",
         "service.plan.cluster.name"},
        {"\"seq_len\": 128", "\"seq_len\": 0",
         "service.plan.train.seq_len"},
        {"\"seq_len\": 128",
         "\"seq_len\": 9999999999999999999999999",
         "service.plan.train.seq_len"},
        {"\"tensor\": 1", "\"tensor\": -4",
         "service.plan.parallel.tensor"},
        {"\"pipeline\": 2", "\"pipeline\": \"two\"",
         "service.plan.parallel.pipeline"},
        {"\"method\": \"adapipe\"", "\"method\": \"magic\"",
         "service.plan.method"},
        {"\"family\": \"1f1b\"", "\"family\": \"zigzag\"",
         "service.plan.schedule.family"},
        {"\"mem_budget_fraction\": 0.875",
         "\"mem_budget_fraction\": 1.5",
         "service.plan.mem_budget_fraction"},
        {"\"straggler_factor\": 2.0", "\"straggler_factor\": 0.5",
         "service.fault.straggler_factor"},
        {"\"mem_factor\": 1.0", "\"mem_factor\": -1",
         "service.fault.mem_factor"},
        {"\"lost_stages\": 0", "\"lost_stages\": -2",
         "service.fault.lost_stages"},
        {"\"enabled\": true", "\"enabled\": \"yes\"",
         "service.plan.offload.enabled"},
        {"\"bandwidth\": 25000000000.0", "\"bandwidth\": 0",
         "service.plan.offload.bandwidth"},
        {"\"bandwidth\": 25000000000.0", "\"bandwidth\": -1e9",
         "service.plan.offload.bandwidth"},
        {"\"overlap_fraction\": 0.5", "\"overlap_fraction\": 1.5",
         "service.plan.offload.overlap_fraction"},
        {"\"overlap_fraction\": 0.5", "\"overlap_fraction\": -0.25",
         "service.plan.offload.overlap_fraction"},
        {"\"host_link_factor\": 0.5", "\"host_link_factor\": 0",
         "service.fault.host_link_factor"},
        {"\"host_link_factor\": 0.5", "\"host_link_factor\": 1.5",
         "service.fault.host_link_factor"},
    };
    for (const Case &c : cases) {
        std::string doc = kValidServiceRequest;
        const std::size_t pos = doc.find(c.needle);
        ASSERT_NE(pos, std::string::npos) << c.needle;
        doc.replace(pos, std::string(c.needle).size(),
                    c.replacement);
        const auto r = tryServiceRequestFromJsonString(doc);
        ASSERT_FALSE(r.ok()) << c.expected;
        EXPECT_NE(r.error().find(c.expected), std::string::npos)
            << "error was: " << r.error();
    }
}

TEST(ServiceFuzz, CrossFieldValidationIsRecoverable)
{
    // Each of these would trip a fatal assertion in the profiler or
    // planner if it reached them; the protocol layer must turn them
    // into errors anchored at service.plan instead.
    struct Case
    {
        const char *needle;
        const char *replacement;
        const char *expected;
    };
    const Case cases[] = {
        // Cluster a has 8 devices per node.
        {"\"tensor\": 1, \"pipeline\": 2",
         "\"tensor\": 16, \"pipeline\": 2",
         "exceeds devices per node"},
        // 1 node * 8 devices < 1 * 2 * 8.
        {"\"tensor\": 1, \"pipeline\": 2, \"data\": 1",
         "\"tensor\": 1, \"pipeline\": 2, \"data\": 8",
         "devices but the cluster has"},
        // The tiny test model has 4 blocks -> at most 6 layers
        // (8 devices keep the cluster check out of the way).
        {"\"pipeline\": 2", "\"pipeline\": 8",
         "exceeds the model's"},
        {"\"micro_batch\": 1", "\"micro_batch\": 3",
         "not divisible by micro_batch*data"},
    };
    for (const Case &c : cases) {
        std::string doc = kValidServiceRequest;
        const std::size_t pos = doc.find(c.needle);
        ASSERT_NE(pos, std::string::npos) << c.needle;
        doc.replace(pos, std::string(c.needle).size(),
                    c.replacement);
        const auto r = tryServiceRequestFromJsonString(doc);
        ASSERT_FALSE(r.ok()) << c.expected;
        EXPECT_NE(r.error().find("service.plan"), std::string::npos)
            << r.error();
        EXPECT_NE(r.error().find(c.expected), std::string::npos)
            << "error was: " << r.error();
    }
}

TEST(ServiceFuzz, RandomMutationsNeverAbortTheService)
{
    const std::uint64_t seed = fuzzSeed();
    SCOPED_TRACE("ADAPIPE_FUZZ_SEED=" + std::to_string(seed));
    Rng rng(seed ^ 0x5E21);
    // Drive the full service, not just the parser: every mutated
    // line must produce a one-line response (ok or error), never an
    // abort. The base request plans the tiny model, so the rare
    // mutant that stays valid is still fast to serve.
    PlanService service;
    for (int trial = 0; trial < 300; ++trial) {
        std::string doc = kValidServiceRequest;
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(doc.size()) - 1));
            if (rng.uniformInt(0, 1) == 0)
                doc[pos] = static_cast<char>(rng.uniformInt(1, 127));
            else
                doc.erase(pos, 1);
        }
        const std::string response = service.handleLine(doc);
        ASSERT_FALSE(response.empty());
        EXPECT_EQ(response.rfind("{\"ok\":", 0), 0u) << response;
    }
}

TEST(DegradedPlanFuzz, MutationsNeverAbort)
{
    const std::uint64_t seed = fuzzSeed();
    SCOPED_TRACE("ADAPIPE_FUZZ_SEED=" + std::to_string(seed));
    Rng rng(seed ^ 0xDE64);
    // Wrap the valid plan in a degraded-plan document.
    const std::string base = std::string(R"({
  "scenario": {"straggler_stage": -1, "straggler_factor": 1.0,
               "mem_factor": 1.0, "lost_stages": 1,
               "host_link_factor": 0.75},
  "original_fingerprint": "0123456789abcdef",
  "degraded_capacity": 1000,
  "plan": )") + kValidPlan + "\n}";
    ASSERT_TRUE(tryDegradedPlanFromJsonString(base).ok())
        << tryDegradedPlanFromJsonString(base).error();
    for (int trial = 0; trial < 300; ++trial) {
        std::string doc = base;
        const int edits = static_cast<int>(rng.uniformInt(1, 4));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(doc.size()) - 1));
            if (rng.uniformInt(0, 1) == 0)
                doc[pos] = static_cast<char>(rng.uniformInt(1, 127));
            else
                doc.erase(pos, 1);
        }
        const auto r = tryDegradedPlanFromJsonString(doc);
        if (!r.ok()) {
            EXPECT_FALSE(r.error().empty());
        }
    }
}

} // namespace
} // namespace adapipe
