/**
 * @file
 * Tests for the JSON writer/parser, plan serialization round-trips
 * and the Chrome trace exporter.
 */

#include <gtest/gtest.h>

#include "core/plan_io.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "sim/baseline_eval.h"
#include "sim/trace_export.h"
#include "util/canonical_json.h"
#include "util/json.h"

namespace adapipe {
namespace {

TEST(Json, ScalarDump)
{
    EXPECT_EQ(JsonValue::null().dump(), "null");
    EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
    EXPECT_EQ(JsonValue::integer(-42).dump(), "-42");
    EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonValue::string("a\"b\\c\nd").dump(),
              "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ArrayAndObjectDump)
{
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue::integer(1));
    arr.push(JsonValue::integer(2));
    JsonValue obj = JsonValue::object();
    obj.set("xs", std::move(arr));
    obj.set("ok", JsonValue::boolean(false));
    EXPECT_EQ(obj.dump(), "{\"xs\":[1,2],\"ok\":false}");
}

TEST(Json, SetOverwritesExistingKey)
{
    JsonValue obj = JsonValue::object();
    obj.set("k", JsonValue::integer(1));
    obj.set("k", JsonValue::integer(2));
    EXPECT_EQ(obj.at("k").asInteger(), 2);
}

TEST(Json, ParseRoundTrip)
{
    JsonValue obj = JsonValue::object();
    obj.set("name", JsonValue::string("line1\nline2 \"quoted\""));
    obj.set("pi", JsonValue::number(3.141592653589793));
    obj.set("n", JsonValue::integer(1234567890123));
    obj.set("flag", JsonValue::boolean(true));
    obj.set("nothing", JsonValue::null());
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue::number(0.5));
    arr.push(JsonValue::string("x"));
    obj.set("arr", std::move(arr));

    for (int indent : {0, 2, 4}) {
        const JsonValue parsed = JsonValue::parse(obj.dump(indent));
        EXPECT_EQ(parsed.at("name").asString(),
                  "line1\nline2 \"quoted\"");
        EXPECT_DOUBLE_EQ(parsed.at("pi").asNumber(),
                         3.141592653589793);
        EXPECT_EQ(parsed.at("n").asInteger(), 1234567890123);
        EXPECT_TRUE(parsed.at("flag").asBool());
        EXPECT_TRUE(parsed.at("nothing").isNull());
        EXPECT_EQ(parsed.at("arr").elements().size(), 2u);
    }
}

TEST(Json, ParseEmptyContainers)
{
    EXPECT_TRUE(JsonValue::parse("[]").elements().empty());
    EXPECT_TRUE(JsonValue::parse("{}").isObject());
    EXPECT_TRUE(JsonValue::parse("  {  }  ").isObject());
}

TEST(Json, ParseRejectsGarbage)
{
    EXPECT_DEATH(JsonValue::parse("{\"a\": }"), "");
    EXPECT_DEATH(JsonValue::parse("[1, 2"), "");
    EXPECT_DEATH(JsonValue::parse("{} trailing"), "trailing");
}

TEST(Json, ContainsAndMissingKey)
{
    JsonValue obj = JsonValue::object();
    obj.set("a", JsonValue::integer(1));
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("b"));
    EXPECT_DEATH(obj.at("b"), "missing JSON key");
}

class PlanIoTest : public ::testing::Test
{
  protected:
    PipelinePlan
    makeTestPlan()
    {
        const ModelConfig model = gpt3_13b();
        TrainConfig train;
        train.seqLen = 8192;
        train.globalBatch = 32;
        ParallelConfig par;
        par.tensor = 8;
        par.pipeline = 4;
        par.data = 1;
        const ProfiledModel pm = buildProfiledModel(
            model, train, par, clusterA(4));
        const PlanResult r = makePlan(pm, PlanMethod::AdaPipe);
        EXPECT_TRUE(r.ok);
        return r.plan;
    }
};

TEST_F(PlanIoTest, RoundTripPreservesEverything)
{
    const PipelinePlan plan = makeTestPlan();
    const std::string text = planToJsonString(plan);
    const PipelinePlan back = planFromJsonString(text);

    EXPECT_EQ(back.method, plan.method);
    EXPECT_EQ(back.par.tensor, plan.par.tensor);
    EXPECT_EQ(back.par.pipeline, plan.par.pipeline);
    EXPECT_EQ(back.par.data, plan.par.data);
    EXPECT_EQ(back.train.seqLen, plan.train.seqLen);
    EXPECT_EQ(back.microBatches, plan.microBatches);
    EXPECT_DOUBLE_EQ(back.timing.total, plan.timing.total);
    ASSERT_EQ(back.stages.size(), plan.stages.size());
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
        EXPECT_EQ(back.stages[s].firstLayer,
                  plan.stages[s].firstLayer);
        EXPECT_EQ(back.stages[s].lastLayer, plan.stages[s].lastLayer);
        EXPECT_DOUBLE_EQ(back.stages[s].timeFwd,
                         plan.stages[s].timeFwd);
        EXPECT_EQ(back.stages[s].memPeak, plan.stages[s].memPeak);
        EXPECT_EQ(back.stages[s].savedMask, plan.stages[s].savedMask);
    }
}

TEST_F(PlanIoTest, AllMethodsSerializable)
{
    for (PlanMethod m :
         {PlanMethod::AdaPipe, PlanMethod::EvenPartition,
          PlanMethod::DappleFull, PlanMethod::DappleNon,
          PlanMethod::DappleSelective}) {
        PipelinePlan plan;
        plan.method = m;
        plan.par.pipeline = 1;
        plan.stages.emplace_back();
        const PipelinePlan back =
            planFromJsonString(planToJsonString(plan));
        EXPECT_EQ(back.method, m);
    }
}

TEST_F(PlanIoTest, RejectsCorruptedPlan)
{
    const PipelinePlan plan = makeTestPlan();
    JsonValue json = planToJson(plan);
    json.set("method", JsonValue::string("not-a-method"));
    EXPECT_DEATH(planFromJson(json), "unknown plan method");
}

TEST(TraceExport, ValidJsonWithAllOps)
{
    const Schedule sched = build1F1B(3, 4);
    const SimResult sim = simulate(
        sched, std::vector<StageTimes>(3, {1.0, 2.0}), {});
    const std::string trace = toChromeTrace(sched, sim);
    const JsonValue parsed = JsonValue::parse(trace);
    // One event per op plus one metadata row per device.
    EXPECT_EQ(parsed.at("traceEvents").elements().size(),
              sched.ops.size() + 3);
    // Every X event has non-negative ts and positive dur.
    for (const auto &ev : parsed.at("traceEvents").elements()) {
        if (ev.at("ph").asString() != "X")
            continue;
        EXPECT_GE(ev.at("ts").asNumber(), 0.0);
        EXPECT_GT(ev.at("dur").asNumber(), 0.0);
    }
}

TEST(TraceExport, ForwardDoublingNamesCoverBothMicroBatches)
{
    const Schedule sched = buildChimeraD(2, 4);
    const SimResult sim = simulate(
        sched, std::vector<StageTimes>(2, {1.0, 2.0}), {});
    const std::string trace = toChromeTrace(sched, sim);
    EXPECT_NE(trace.find("F0-1"), std::string::npos);
}

TEST(CanonicalJson, KeyOrderAndWhitespaceDoNotMatter)
{
    const JsonValue a = JsonValue::parse(
        R"({"b": [1, 2, {"y": 2, "x": 1}], "a": true})");
    const JsonValue b = JsonValue::parse(
        "{ \"a\": true,\n  \"b\": [1, 2, {\"x\": 1, \"y\": 2}] }");
    EXPECT_EQ(canonicalJsonString(a), canonicalJsonString(b));
    EXPECT_EQ(canonicalJsonString(a),
              R"({"a":true,"b":[1,2,{"x":1,"y":2}]})");
    EXPECT_EQ(jsonFingerprint(a), jsonFingerprint(b));
}

TEST(CanonicalJson, ArrayOrderIsSignificant)
{
    const JsonValue a = JsonValue::parse(R"({"k": [1, 2]})");
    const JsonValue b = JsonValue::parse(R"({"k": [2, 1]})");
    EXPECT_NE(jsonFingerprint(a), jsonFingerprint(b));
}

TEST(CanonicalJson, FingerprintIsTheDocumentedFnv1a64)
{
    // Reference values of the FNV-1a-64 test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(hex16(0xcbf29ce484222325ull), "cbf29ce484222325");
    EXPECT_EQ(hex16(0x1ull), "0000000000000001");
    // The fingerprint is exactly hex16(fnv1a64(canonical text)).
    const JsonValue doc = JsonValue::parse(R"({"a": 1})");
    EXPECT_EQ(jsonFingerprint(doc),
              hex16(fnv1a64(canonicalJsonString(doc))));
}

} // namespace
} // namespace adapipe
