/**
 * @file
 * Golden-plan regression tests: re-plan the two paper workloads
 * (GPT-3 175B and Llama 2 70B on cluster A) and compare against the
 * committed fixtures in tests/fixtures/. Any planner, cost-model or
 * serialization change that alters the emitted plans fails here and
 * forces an explicit, reviewable fixture update
 * (scripts/update_golden_plans.sh).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/plan_io.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "hw/cluster.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path
                           << " (run scripts/update_golden_plans.sh)";
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
fixturePath(const std::string &name)
{
    return std::string(ADAPIPE_FIXTURE_DIR) + "/" + name;
}

struct GoldenCase
{
    const char *fixture;
    ModelConfig model;
    int seq;
    int globalBatch;
    int tensor;
    int pipeline;
    int data;
};

void
checkGolden(const GoldenCase &c)
{
    TrainConfig train;
    train.seqLen = c.seq;
    train.globalBatch = c.globalBatch;
    ParallelConfig par;
    par.tensor = c.tensor;
    par.pipeline = c.pipeline;
    par.data = c.data;

    const ProfiledModel pm =
        buildProfiledModel(c.model, train, par, clusterA(8));
    const PlanResult result = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(result.ok) << result.oomReason;

    const std::string text = readFile(fixturePath(c.fixture));
    ASSERT_FALSE(text.empty());

    // Parse-then-dump both sides: the comparison is over JSON
    // content, insensitive to whitespace or key formatting drift.
    const PipelinePlan golden = planFromJsonString(text);
    EXPECT_EQ(planToJsonString(result.plan, 0),
              planToJsonString(golden, 0))
        << c.fixture
        << ": plan changed; if intentional, run "
           "scripts/update_golden_plans.sh and commit the diff";

    // Spot checks that survive even a fixture refresh: the golden
    // workloads must stay feasible with the paper's shape.
    EXPECT_EQ(static_cast<int>(result.plan.stages.size()),
              c.pipeline);
    EXPECT_GT(result.plan.timing.total, 0.0);
}

TEST(GoldenPlan, Gpt3_175B_ClusterA)
{
    GoldenCase c;
    c.fixture = "gpt3_175b_adapipe_plan.json";
    c.model = gpt3_175b();
    c.seq = 16384;
    c.globalBatch = 32;
    c.tensor = 8;
    c.pipeline = 8;
    c.data = 1;
    checkGolden(c);
}

TEST(GoldenPlan, Llama2_70B_ClusterA)
{
    GoldenCase c;
    c.fixture = "llama2_70b_adapipe_plan.json";
    c.model = llama2_70b();
    c.seq = 4096;
    c.globalBatch = 64;
    c.tensor = 4;
    c.pipeline = 8;
    c.data = 2;
    checkGolden(c);
}

TEST(GoldenPlan, FixturesRoundTripThroughPlanIo)
{
    // The committed fixtures themselves must survive a parse/dump
    // round trip (guards the reader against schema drift).
    for (const char *name : {"gpt3_175b_adapipe_plan.json",
                             "llama2_70b_adapipe_plan.json"}) {
        const std::string text = readFile(fixturePath(name));
        const PipelinePlan plan = planFromJsonString(text);
        const PipelinePlan again =
            planFromJsonString(planToJsonString(plan));
        EXPECT_EQ(planToJsonString(plan, 0),
                  planToJsonString(again, 0))
            << name;
    }
}

} // namespace
} // namespace adapipe
