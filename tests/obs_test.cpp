/**
 * @file
 * Tests for the search observability subsystem (src/obs/): registry
 * semantics, the macro layer, every sink format, and an end-to-end
 * check that one planner + sweep + simulator run emits the full
 * metric catalogue as valid JSON-lines.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "core/planner.h"
#include "core/profiled_model.h"
#include "core/strategy_search.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/macros.h"
#include "obs/registry.h"
#include "obs/sinks.h"
#include "sim/baseline_eval.h"
#include "util/json.h"

namespace adapipe {
namespace {

TEST(ObsRegistry, CountersAccumulateAndDefaultToZero)
{
    obs::Registry r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.counter("never"), 0);
    r.add("dp.cells", 5);
    r.add("dp.cells", 3);
    r.add("dp.runs");
    EXPECT_EQ(r.counter("dp.cells"), 8);
    EXPECT_EQ(r.counter("dp.runs"), 1);
    EXPECT_FALSE(r.empty());
    r.clear();
    EXPECT_TRUE(r.empty());
}

TEST(ObsRegistry, GaugesLastWriterWins)
{
    obs::Registry r;
    EXPECT_DOUBLE_EQ(r.gauge("never"), 0.0);
    r.set("search.best", 3.5);
    r.set("search.best", 2.25);
    EXPECT_DOUBLE_EQ(r.gauge("search.best"), 2.25);
}

TEST(ObsRegistry, MergeAddsCountersOverwritesGaugesAppendsSpans)
{
    obs::Registry a;
    a.add("shared", 2);
    a.add("only_a", 1);
    a.set("g", 1.0);
    a.record({"span_a", 0.0, 1.0, 0, 0});

    obs::Registry b;
    b.add("shared", 3);
    b.add("only_b", 7);
    b.set("g", 9.0);
    b.record({"span_b", 2.0, 1.0, 0, 1});

    a.merge(b);
    EXPECT_EQ(a.counter("shared"), 5);
    EXPECT_EQ(a.counter("only_a"), 1);
    EXPECT_EQ(a.counter("only_b"), 7);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
    ASSERT_EQ(a.spans().size(), 2u);
    EXPECT_EQ(a.spans()[1].name, "span_b");
}

TEST(ObsRegistry, InstallIsPerThread)
{
    obs::Registry r;
    obs::ScopedRegistry scope(&r);
    ASSERT_EQ(obs::current(), &r);

    obs::Registry *seen = &r;
    std::thread t([&] { seen = obs::current(); });
    t.join();
    EXPECT_EQ(seen, nullptr)
        << "a fresh thread must start uninstrumented";
    EXPECT_EQ(obs::current(), &r);
}

TEST(ObsRegistry, ScopedRegistryRestoresPrevious)
{
    obs::Registry outer_reg;
    obs::Registry inner_reg;
    EXPECT_EQ(obs::current(), nullptr);
    {
        obs::ScopedRegistry outer(&outer_reg);
        EXPECT_EQ(obs::current(), &outer_reg);
        {
            obs::ScopedRegistry inner(&inner_reg);
            EXPECT_EQ(obs::current(), &inner_reg);
        }
        EXPECT_EQ(obs::current(), &outer_reg);
    }
    EXPECT_EQ(obs::current(), nullptr);
}

TEST(ObsRegistry, SpansRecordNestingDepth)
{
    obs::Registry r;
    {
        obs::ScopedRegistry scope(&r);
        obs::ScopedSpan outer("outer");
        {
            obs::ScopedSpan inner("inner");
        }
    }
    ASSERT_EQ(r.spans().size(), 2u);
    // Spans complete innermost-first.
    EXPECT_EQ(r.spans()[0].name, "inner");
    EXPECT_EQ(r.spans()[0].depth, 1);
    EXPECT_EQ(r.spans()[1].name, "outer");
    EXPECT_EQ(r.spans()[1].depth, 0);
    EXPECT_GE(r.spans()[1].durUs, r.spans()[0].durUs);
    EXPECT_LE(r.spans()[1].startUs, r.spans()[0].startUs);
}

TEST(ObsRegistry, SpanWithoutRegistryIsANoOp)
{
    ASSERT_EQ(obs::current(), nullptr);
    obs::ScopedSpan span("orphan"); // must not crash or leak
}

#if ADAPIPE_OBS_ENABLED
TEST(ObsMacros, RouteToCurrentRegistry)
{
    obs::Registry r;
    {
        obs::ScopedRegistry scope(&r);
        ADAPIPE_OBS_COUNT("macro.count", 4);
        ADAPIPE_OBS_COUNT("macro.count", 1);
        ADAPIPE_OBS_GAUGE("macro.gauge", 1.5);
        ADAPIPE_OBS_SPAN(span, "macro.span");
    }
    EXPECT_EQ(r.counter("macro.count"), 5);
    EXPECT_DOUBLE_EQ(r.gauge("macro.gauge"), 1.5);
    ASSERT_EQ(r.spans().size(), 1u);
    EXPECT_EQ(r.spans()[0].name, "macro.span");
}

TEST(ObsMacros, NoOpWithoutRegistry)
{
    ASSERT_EQ(obs::current(), nullptr);
    ADAPIPE_OBS_COUNT("macro.count", 4);
    ADAPIPE_OBS_GAUGE("macro.gauge", 1.5);
    ADAPIPE_OBS_SPAN(span, "macro.span");
}
#endif

TEST(ObsSinks, JsonLinesRoundTripThroughUtilJson)
{
    obs::Registry r;
    r.add("c.one", 42);
    r.set("g \"quoted\"", 0.5);
    r.record({"s.span", 1.5, 2.5, 1, 3});

    std::istringstream lines(obs::toJsonLines(r));
    std::string line;
    int counters = 0, gauges = 0, spans = 0;
    while (std::getline(lines, line)) {
        const JsonValue v = JsonValue::parse(line);
        ASSERT_TRUE(v.isObject()) << line;
        const std::string &type = v.at("type").asString();
        if (type == "counter") {
            ++counters;
            EXPECT_EQ(v.at("name").asString(), "c.one");
            EXPECT_EQ(v.at("value").asInteger(), 42);
        } else if (type == "gauge") {
            ++gauges;
            EXPECT_EQ(v.at("name").asString(), "g \"quoted\"");
            EXPECT_DOUBLE_EQ(v.at("value").asNumber(), 0.5);
        } else if (type == "span") {
            ++spans;
            EXPECT_EQ(v.at("name").asString(), "s.span");
            EXPECT_DOUBLE_EQ(v.at("start_us").asNumber(), 1.5);
            EXPECT_DOUBLE_EQ(v.at("dur_us").asNumber(), 2.5);
            EXPECT_EQ(v.at("depth").asInteger(), 1);
            EXPECT_EQ(v.at("thread").asInteger(), 3);
        } else {
            FAIL() << "unknown line type " << type;
        }
    }
    EXPECT_EQ(counters, 1);
    EXPECT_EQ(gauges, 1);
    EXPECT_EQ(spans, 1);
}

TEST(ObsSinks, CsvSummaryAggregatesSpans)
{
    obs::Registry r;
    r.add("c", 2);
    r.record({"s", 0.0, 10.0, 0, 0});
    r.record({"s", 20.0, 5.0, 0, 0});

    std::ostringstream os;
    obs::writeCsvSummary(r, os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("kind,name,count,value"), std::string::npos);
    EXPECT_NE(csv.find("counter,c,1,2"), std::string::npos);
    EXPECT_NE(csv.find("span,s,2,15"), std::string::npos) << csv;
}

TEST(ObsSinks, ChromeTraceEmitsCompleteEvents)
{
    obs::Registry r;
    r.record({"solve", 1.0, 2.0, 0, 0});
    const JsonValue doc =
        JsonValue::parse(obs::spansToChromeTrace(r));
    ASSERT_TRUE(doc.isObject());
    const auto &events = doc.at("traceEvents").elements();
    bool found = false;
    for (const JsonValue &e : events) {
        if (e.at("ph").asString() != "X")
            continue;
        found = true;
        EXPECT_EQ(e.at("name").asString(), "solve");
        EXPECT_DOUBLE_EQ(e.at("ts").asNumber(), 1.0);
        EXPECT_DOUBLE_EQ(e.at("dur").asNumber(), 2.0);
    }
    EXPECT_TRUE(found);
}

/**
 * Acceptance check of the instrumentation coverage: one planner +
 * strategy-sweep + simulator run on the tiny model must emit valid
 * JSON-lines naming >= 10 distinct metrics that span all four
 * instrumented subsystems.
 */
TEST(ObsEndToEnd, SearchEmitsFullMetricCatalogue)
{
    obs::Registry metrics;
    {
        obs::ScopedRegistry scope(&metrics);

        const ModelConfig model = tinyTestModel();
        TrainConfig train;
        train.seqLen = 2048;
        train.globalBatch = 8;
        // Tight memory forces real knapsack runs (ample memory takes
        // the stage-cost fast path and never enters the DP).
        ClusterSpec cluster = clusterA(1);
        cluster.device.memCapacity = MiB(8);
        cluster.device.reservedBytes = 0;

        ParallelConfig par;
        par.tensor = 2;
        par.pipeline = 2;
        par.data = 2;
        const ProfiledModel pm =
            buildProfiledModel(model, train, par, cluster);
        const PlanResult plan = makePlan(pm, PlanMethod::AdaPipe);
        ASSERT_TRUE(plan.ok);
        simulatePlan(pm, plan.plan);
        sweepStrategies(model, train, cluster, PlanMethod::AdaPipe);
    }

#if ADAPIPE_OBS_ENABLED
    std::set<std::string> names;
    std::set<std::string> subsystems;
    std::istringstream lines(obs::toJsonLines(metrics));
    std::string line;
    while (std::getline(lines, line)) {
        const JsonValue v = JsonValue::parse(line);
        const std::string &name = v.at("name").asString();
        names.insert(name);
        subsystems.insert(name.substr(0, name.find('.')));
    }
    EXPECT_GE(names.size(), 10u);
    for (const char *subsystem :
         {"recompute_dp", "partition_dp", "strategy_search", "sim"}) {
        EXPECT_TRUE(subsystems.count(subsystem))
            << "no metrics from " << subsystem;
    }
    EXPECT_GT(metrics.counter("recompute_dp.runs"), 0);
    EXPECT_GT(metrics.counter("partition_dp.states_visited"), 0);
    EXPECT_GT(metrics.counter("strategy_search.strategies_planned"),
              0);
    EXPECT_GT(metrics.counter("sim.events"), 0);
#else
    EXPECT_TRUE(metrics.empty())
        << "ADAPIPE_OBS=OFF must compile out every macro";
#endif
}

} // namespace
} // namespace adapipe
