/**
 * @file
 * Tests for the Sec. 5.1 closed-form 1F1B cost model, including the
 * uniform-stage exact formula and agreement with the event-driven
 * simulator.
 */

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace adapipe {
namespace {

TEST(CostModel, SingleStageIsSerial)
{
    const PipelineTiming t = evaluate1F1B({{2.0, 3.0}}, 4);
    // One stage: n forwards + n backwards, no bubbles.
    EXPECT_DOUBLE_EQ(t.total, 2.0 + 3.0 + 3.0 * 5.0);
    EXPECT_DOUBLE_EQ(t.steadyPerMb, 5.0);
}

TEST(CostModel, UniformStagesExactFormula)
{
    // For uniform stages 1F1B takes exactly (n + p - 1)(F + B).
    for (int p : {2, 3, 4, 8}) {
        for (int n : {8, 16, 64}) {
            std::vector<StageTimes> stages(p, {1.0, 2.0});
            const PipelineTiming t = evaluate1F1B(stages, n);
            EXPECT_NEAR(t.total, (n + p - 1) * 3.0, 1e-9)
                << "p=" << p << " n=" << n;
        }
    }
}

TEST(CostModel, BubbleRatioFormula)
{
    // Bubble fraction of 1F1B is (p - 1) / (n + p - 1).
    const int p = 4;
    const int n = 12;
    std::vector<StageTimes> stages(p, {1.0, 2.0});
    const PipelineTiming t = evaluate1F1B(stages, n);
    const double busy = n * 3.0;
    const double bubble = t.total - busy;
    EXPECT_NEAR(bubble / t.total,
                static_cast<double>(p - 1) / (n + p - 1), 1e-9);
}

TEST(CostModel, SlowestStageDominatesSteady)
{
    std::vector<StageTimes> stages{{1.0, 2.0}, {2.0, 4.0}, {1.0, 2.0}};
    const PipelineTiming t = evaluate1F1B(stages, 32);
    EXPECT_DOUBLE_EQ(t.steadyPerMb, 6.0);
}

TEST(CostModel, MatchesSimulatorOnUniformStages)
{
    for (int p : {2, 4, 8}) {
        for (int n : {p, 2 * p, 32}) {
            std::vector<StageTimes> stages(p, {1.5, 3.0});
            const PipelineTiming model = evaluate1F1B(stages, n);
            const SimResult sim =
                simulate(build1F1B(p, n), stages, {});
            EXPECT_NEAR(model.total, sim.iterationTime, 1e-9)
                << "p=" << p << " n=" << n;
        }
    }
}

/**
 * Property: agreement between the closed form and the event-driven
 * simulator. The Sec. 5.1 recurrences track only adjacent-stage
 * interactions, so they are exact for balanced pipelines (the regime
 * AdaPipe's partitioning produces) and a lower bound under heavy
 * imbalance, where cross-stage stalls compound.
 */
class CostModelVsSim
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(CostModelVsSim, TightForNearBalancedStages)
{
    const auto [p, n, seed] = GetParam();
    Rng rng(seed);
    std::vector<StageTimes> stages;
    for (int s = 0; s < p; ++s) {
        // +-5% imbalance: what a tuned partition looks like.
        const double f = 1.0 * rng.uniform(0.95, 1.05);
        stages.push_back({f, 2.0 * rng.uniform(0.95, 1.05)});
    }
    const PipelineTiming model = evaluate1F1B(stages, n);
    const SimResult sim = simulate(build1F1B(p, n), stages, {});
    EXPECT_LE(model.total, sim.iterationTime + 1e-9);
    EXPECT_NEAR(model.total, sim.iterationTime, 0.02 * sim.iterationTime)
        << "p=" << p << " n=" << n << " seed=" << seed;
}

TEST_P(CostModelVsSim, LowerBoundForImbalancedStages)
{
    const auto [p, n, seed] = GetParam();
    Rng rng(1000 + seed);
    std::vector<StageTimes> stages;
    for (int s = 0; s < p; ++s) {
        const double f = rng.uniform(0.5, 2.0);
        stages.push_back({f, f * rng.uniform(1.5, 3.0)});
    }
    const PipelineTiming model = evaluate1F1B(stages, n);
    const SimResult sim = simulate(build1F1B(p, n), stages, {});
    EXPECT_LE(model.total, sim.iterationTime + 1e-9)
        << "p=" << p << " n=" << n << " seed=" << seed;
    // Even under 4x imbalance the model stays within 15%.
    EXPECT_NEAR(model.total, sim.iterationTime,
                0.15 * sim.iterationTime)
        << "p=" << p << " n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Random, CostModelVsSim,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(8, 16, 33),
                       ::testing::Values(1, 2, 3)));

TEST(CostModel, GPipeSlowerThan1F1BInMemoryNeverButEqualsInTime)
{
    // GPipe and 1F1B have the same bubble count for uniform stages;
    // the difference the paper stresses is memory, not time.
    const int p = 4;
    const int n = 16;
    std::vector<StageTimes> stages(p, {1.0, 2.0});
    const Seconds gpipe = evaluateGPipe(stages, n);
    const PipelineTiming f1b = evaluate1F1B(stages, n);
    EXPECT_NEAR(gpipe, f1b.total, 1e-9);
}

TEST(CostModel, FewerMicroBatchesMeansWorseBubbleRatio)
{
    const int p = 8;
    std::vector<StageTimes> stages(p, {1.0, 2.0});
    double prev_ratio = 0.0;
    for (int n : {64, 32, 16, 8}) {
        const PipelineTiming t = evaluate1F1B(stages, n);
        const double ratio = (t.total - n * 3.0) / t.total;
        EXPECT_GT(ratio, prev_ratio);
        prev_ratio = ratio;
    }
}

} // namespace
} // namespace adapipe
