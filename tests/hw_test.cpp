/**
 * @file
 * Unit tests for the hw module: device/cluster presets and the
 * roofline profiler.
 */

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "hw/device.h"
#include "hw/profiler.h"
#include "model/model_config.h"
#include "model/units.h"

namespace adapipe {
namespace {

TEST(Device, PresetsAreValid)
{
    a100_80gb().validate();
    ascend910_32gb().validate();
    genericDevice24gb().validate();
    EXPECT_EQ(a100_80gb().memCapacity, GiB(80));
    EXPECT_EQ(ascend910_32gb().memCapacity, GiB(32));
}

TEST(Cluster, PresetsAreValid)
{
    const ClusterSpec a = clusterA(8);
    a.validate();
    EXPECT_EQ(a.totalDevices(), 64);
    const ClusterSpec b = clusterB(32);
    b.validate();
    EXPECT_EQ(b.totalDevices(), 256);
    // The Ascend interconnect is slower in every dimension.
    EXPECT_LT(b.intraNodeBandwidth, a.intraNodeBandwidth);
    EXPECT_LT(b.interNodeBandwidth, a.interNodeBandwidth);
}

class ProfilerTest : public ::testing::Test
{
  protected:
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    ParallelConfig par;
    ClusterSpec cluster = clusterA(4);

    void
    SetUp() override
    {
        train.seqLen = 4096;
        par.tensor = 8;
        par.pipeline = 4;
    }
};

TEST_F(ProfilerTest, GemmIsComputeBound)
{
    const auto layers = buildLayerSequence(model, train, par);
    OperatorProfiler profiler(cluster, par);
    // attn.k_proj is a large GEMM with no attached collective: its
    // roofline should be compute limited, i.e. time equal to
    // flops / (peak * eff) plus the kernel overhead.
    const Layer &attn = layers[1];
    const ComputationUnit *kp = nullptr;
    for (const auto &u : attn.units) {
        if (u.name == "attn.k_proj")
            kp = &u;
    }
    ASSERT_NE(kp, nullptr);
    ASSERT_EQ(kp->commBytesFwd, 0u);
    const UnitProfile p = profiler.profile(*kp);
    const double compute_time =
        kp->flopsFwd / (cluster.device.peakFlops *
                        OperatorProfiler::efficiency(UnitKind::Gemm));
    EXPECT_NEAR(p.timeFwd, compute_time + cluster.device.kernelOverhead,
                1e-6);
}

TEST_F(ProfilerTest, LayerNormIsBandwidthBound)
{
    const auto layers = buildLayerSequence(model, train, par);
    OperatorProfiler profiler(cluster, par);
    const ComputationUnit &norm = layers[1].units.front();
    ASSERT_EQ(norm.kind, UnitKind::LayerNorm);
    const UnitProfile p = profiler.profile(norm);
    const double mem_time = static_cast<double>(norm.trafficFwd) /
                            cluster.device.memBandwidth;
    EXPECT_NEAR(p.timeFwd, mem_time + cluster.device.kernelOverhead,
                1e-5);
}

TEST_F(ProfilerTest, BackwardSlowerThanForward)
{
    const auto layers = buildLayerSequence(model, train, par);
    OperatorProfiler profiler(cluster, par);
    for (const auto &layer : layers) {
        for (const auto &profile : profiler.profileLayer(layer)) {
            EXPECT_GE(profile.timeBwd, profile.timeFwd)
                << profile.name;
        }
    }
}

TEST_F(ProfilerTest, TensorParallelReducesUnitTime)
{
    OperatorProfiler profiler(cluster, par);
    ParallelConfig par1 = par;
    par1.tensor = 1;
    OperatorProfiler profiler1(cluster, par1);

    const auto sharded = buildLayerSequence(model, train, par);
    const auto full = buildLayerSequence(model, train, par1);
    // Compare the q_proj GEMM under t=8 vs t=1.
    const UnitProfile p8 = profiler.profile(sharded[1].units[1]);
    const UnitProfile p1 = profiler1.profile(full[1].units[1]);
    EXPECT_LT(p8.timeFwd, p1.timeFwd);
}

TEST_F(ProfilerTest, CollectiveTimeZeroWithoutTp)
{
    ParallelConfig par1 = par;
    par1.tensor = 1;
    OperatorProfiler profiler(cluster, par1);
    EXPECT_EQ(profiler.collectiveTime(GiB(1)), 0.0);
    EXPECT_EQ(profiler.collectiveTime(0), 0.0);
}

TEST_F(ProfilerTest, P2pUsesInterNodeBandwidthOnMultiNode)
{
    OperatorProfiler profiler(cluster, par);
    const Bytes payload = MiB(64);
    const Seconds t = profiler.p2pTime(payload);
    EXPECT_NEAR(t,
                cluster.linkLatency +
                    static_cast<double>(payload) /
                        cluster.interNodeBandwidth,
                1e-9);

    ClusterSpec single = cluster;
    single.numNodes = 1;
    OperatorProfiler profiler1(single, par);
    EXPECT_LT(profiler1.p2pTime(payload), t);
}

TEST_F(ProfilerTest, RejectsTensorLargerThanNode)
{
    ParallelConfig bad = par;
    bad.tensor = 16;
    EXPECT_DEATH(OperatorProfiler(cluster, bad),
                 "exceeds devices per node");
}

TEST(Profiler, EfficiencyOrdering)
{
    // GEMMs achieve the best fraction of peak; softmax-ish and
    // normalisation kernels the worst.
    EXPECT_GT(OperatorProfiler::efficiency(UnitKind::Gemm),
              OperatorProfiler::efficiency(UnitKind::FlashAttention));
    EXPECT_GT(OperatorProfiler::efficiency(UnitKind::FlashAttention),
              OperatorProfiler::efficiency(UnitKind::LayerNorm));
}

} // namespace
} // namespace adapipe
