/**
 * @file
 * End-to-end tests for the host-offload path: the bit-exactness
 * sweep (offload on/off x p x v x threads x sync/async staging must
 * all train to identical losses), the forced fetch-miss recompute
 * fallback, the offload counters and the activation-memory saving,
 * the OffloadOptions degenerate-parameter diagnostics, the planner
 * producing tri-choice plans on a tight-memory paper workload, and
 * the plan -> StageSpec offload decode driving the runtime.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autograd/trainer.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "core/profiled_model.h"
#include "core/recompute_dp.h"
#include "hw/cluster.h"
#include "model/model_config.h"
#include "obs/registry.h"
#include "robust/replan.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "sim/interleaved_planner.h"

namespace adapipe {
namespace {

TinyLmConfig
smallConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 6;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

RuntimeOptions
smallOpts()
{
    RuntimeOptions opts;
    opts.steps = 2;
    opts.seqLen = 12;
    opts.microBatches = 4;
    opts.lr = 4e-3f;
    opts.dataSeed = 7;
    return opts;
}

/** Mark every other block for host offload. */
std::vector<StageSpec>
withAlternatingOffload(std::vector<StageSpec> specs)
{
    int b = 0;
    for (StageSpec &spec : specs) {
        spec.offload.clear();
        for (int i = 0; i < spec.numBlocks(); ++i)
            spec.offload.push_back(b++ % 2 == 0);
    }
    return specs;
}

/** Single-threaded reference over the identical data stream. An
 *  offloaded block contributes its spec'd recompute mode: host
 *  staging never changes the math, only where bytes live. */
std::vector<double>
referenceLosses(const TinyLmConfig &cfg, const RuntimeOptions &opts,
                const std::vector<StageSpec> &specs)
{
    TinyLM model(cfg);
    TrainOptions ref;
    ref.steps = opts.steps;
    ref.seqLen = opts.seqLen;
    ref.lr = opts.lr;
    ref.useAdam = opts.useAdam;
    ref.dataSeed = opts.dataSeed;
    ref.microBatches = opts.microBatches;
    for (const StageSpec &spec : specs)
        ref.recompute.insert(ref.recompute.end(),
                             spec.recompute.begin(),
                             spec.recompute.end());
    return trainTinyLM(model, ref).losses;
}

// Offloaded activations round-trip device -> host -> device as raw
// float bytes and the fallback replays from the kept boundary input,
// so the loss stream must be bit-identical to the plain trainer at
// every (p, v, threads, sync) corner — with offload on or off.
TEST(OffloadBitExactness, SweepMatchesReferenceAtEveryCorner)
{
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions base = smallOpts();
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        const std::vector<double> ref = referenceLosses(
            cfg, base, evenStageSpecs(cfg.blocks, 1, mode));
        ASSERT_EQ(ref.size(), static_cast<std::size_t>(base.steps));
        for (const int p : {1, 2, 4}) {
            for (const int v : {1, 2}) {
                if (v * p > cfg.blocks)
                    continue; // a chunk per block at most
                if (v > 1 && base.microBatches % p != 0)
                    continue; // Megatron's interleaving constraint
                const auto specs = withAlternatingOffload(
                    evenStageSpecs(cfg.blocks, v * p, mode));
                for (const int threads : {1, 4}) {
                    for (const bool sync : {false, true}) {
                        RuntimeOptions opts = base;
                        opts.virtualStages = v;
                        opts.intraStageThreads = threads;
                        opts.offloadSync = sync;
                        TinyLM model(cfg);
                        const RuntimeResult run =
                            runPipeline(model, specs, opts);
                        ASSERT_TRUE(run.ok) << run.error;
                        EXPECT_EQ(run.losses, ref)
                            << "mode=" << static_cast<int>(mode)
                            << " p=" << p << " v=" << v
                            << " threads=" << threads
                            << " sync=" << sync;
                    }
                }
            }
        }
    }
}

TEST(OffloadFallback, ForcedFetchMissesRecomputeBitIdentically)
{
    // forceMiss leaves every offloaded segment parked on the host;
    // each backward must then take the recompute fallback from the
    // kept boundary input — same losses, and the misses are counted.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.offloadSync = true;
    opts.offloadForceMiss = true;
    const auto specs = withAlternatingOffload(
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::None));
    const std::vector<double> ref =
        referenceLosses(cfg, opts, specs);

    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run =
        runPipeline(model, specs, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.losses, ref);

    std::int64_t misses = 0;
    std::int64_t fetches = 0;
    for (const StageMetrics &sm : run.stages) {
        misses += sm.offloadFetchMisses;
        fetches += sm.offloadFetches;
    }
    // Sync + forceMiss is fully deterministic: every offloaded
    // (block, micro-batch, step) misses, nothing is ever fetched.
    const std::int64_t offloaded_blocks = (cfg.blocks + 1) / 2;
    EXPECT_EQ(misses, offloaded_blocks * opts.microBatches *
                          opts.steps);
    EXPECT_EQ(fetches, 0);
    EXPECT_EQ(metrics.counter("offload.fetch_miss"), misses);
}

TEST(OffloadCounters, TransfersAreCountedAndMemoryDrops)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.offloadSync = true; // deterministic transfer counts

    const auto plain =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::None);
    const auto offloaded = withAlternatingOffload(plain);

    TinyLM base_model(cfg);
    obs::Registry base_metrics;
    const RuntimeResult base =
        runPipeline(base_model, plain, opts, &base_metrics);
    ASSERT_TRUE(base.ok) << base.error;
    EXPECT_EQ(base_metrics.gauge("runtime.offload.enabled"), 0.0);
    EXPECT_EQ(base_metrics.counter("offload.evictions"), 0);

    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run =
        runPipeline(model, offloaded, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.losses, base.losses);
    EXPECT_EQ(metrics.gauge("runtime.offload.enabled"), 1.0);

    std::int64_t evictions = 0;
    std::int64_t peak_plain = 0;
    std::int64_t peak_offload = 0;
    std::uint64_t bytes_evicted = 0;
    std::uint64_t bytes_fetched = 0;
    for (std::size_t s = 0; s < run.stages.size(); ++s) {
        const StageMetrics &sm = run.stages[s];
        evictions += sm.offloadEvictions;
        bytes_evicted += sm.offloadBytesEvicted;
        bytes_fetched += sm.offloadBytesFetched;
        EXPECT_EQ(sm.offloadFetchMisses, 0) << "stage " << s;
        peak_plain += base.stages[s].peakActivationFloats;
        peak_offload += sm.peakActivationFloats;

        const std::string prefix =
            "runtime.stage." + std::to_string(s) + ".";
        EXPECT_NEAR(metrics.gauge(prefix + "offload_evictions"),
                    static_cast<double>(sm.offloadEvictions), 0.5)
            << prefix;
        EXPECT_NEAR(metrics.gauge(prefix + "offload_bytes_evicted"),
                    static_cast<double>(sm.offloadBytesEvicted), 0.5)
            << prefix;
    }
    // Every offloaded (block, micro-batch, step) evicts once and is
    // fetched back before its backward.
    const std::int64_t offloaded_blocks = (cfg.blocks + 1) / 2;
    EXPECT_EQ(evictions, offloaded_blocks * opts.microBatches *
                             opts.steps);
    EXPECT_GT(bytes_evicted, 0u);
    EXPECT_EQ(bytes_fetched, bytes_evicted);
    EXPECT_EQ(metrics.counter("offload.evictions"), evictions);
    EXPECT_EQ(
        static_cast<std::uint64_t>(
            metrics.counter("offload.bytes_evicted")),
        bytes_evicted);
    // The point of the exercise: device-resident activation peak
    // drops when interior activations live on the host.
    EXPECT_LT(peak_offload, peak_plain);
}

TEST(OffloadOptionsValidation, DegenerateParametersAreRejected)
{
    OffloadOptions ok;
    EXPECT_TRUE(ok.validate().empty()) << ok.validate();

    OffloadOptions zero_bw;
    zero_bw.bandwidth = 0;
    EXPECT_NE(zero_bw.validate().find("bandwidth must be > 0"),
              std::string::npos)
        << zero_bw.validate();
    OffloadOptions neg_bw;
    neg_bw.bandwidth = -25e9;
    EXPECT_FALSE(neg_bw.validate().empty());

    OffloadOptions wild_frac;
    wild_frac.overlapFraction = 1.5;
    EXPECT_NE(
        wild_frac.validate().find("overlap_fraction must be in"),
        std::string::npos)
        << wild_frac.validate();

    // The cost model itself clamps: a fraction above 1 can never
    // produce a negative penalty, below 0 never a discount.
    OffloadOptions clamped;
    clamped.bandwidth = 2.0;
    clamped.overlapFraction = 1.5;
    EXPECT_DOUBLE_EQ(clamped.evictCost(512), 0.0);
    clamped.overlapFraction = -0.5;
    EXPECT_DOUBLE_EQ(clamped.evictCost(512),
                     clamped.linkTime(512));
    EXPECT_DOUBLE_EQ(clamped.linkTime(512), 512.0);

    OffloadOptions neg_link;
    neg_link.linkBudgetPerMb = -1.0;
    EXPECT_NE(neg_link.validate().find("link budget"),
              std::string::npos)
        << neg_link.validate();
}

TEST(OffloadPlan, TightBudgetTriChoiceOffloadsOnGpt3)
{
    // The acceptance workload: GPT-3 175B on a tight memory budget.
    // The recompute-only knapsack must recompute aggressively; the
    // tri-choice solver instead moves units onto the host link and
    // ends with less exposed time, never more.
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(gpt3_175b(), train, par, clusterA(8));

    StageCostOptions recompute_only;
    recompute_only.memBudgetFraction = 0.4;
    const PlanResult base =
        makePlan(pm, PlanMethod::AdaPipe, recompute_only);
    ASSERT_TRUE(base.ok) << base.oomReason;
    EXPECT_FALSE(base.plan.offload);

    StageCostOptions tri = recompute_only;
    tri.offload.enabled = true;
    const PlanResult off = makePlan(pm, PlanMethod::AdaPipe, tri);
    ASSERT_TRUE(off.ok) << off.oomReason;
    EXPECT_TRUE(off.plan.offload);

    int offloaded_units = 0;
    int previously_recomputed = 0;
    Bytes offload_bytes = 0;
    ASSERT_EQ(off.plan.stages.size(), base.plan.stages.size());
    for (std::size_t s = 0; s < off.plan.stages.size(); ++s) {
        const StagePlan &sp = off.plan.stages[s];
        offload_bytes += sp.offloadBytes;
        if (sp.offloadMask.empty())
            continue;
        ASSERT_EQ(sp.offloadMask.size(), sp.savedMask.size());
        for (std::size_t u = 0; u < sp.offloadMask.size(); ++u) {
            if (!sp.offloadMask[u])
                continue;
            ++offloaded_units;
            EXPECT_FALSE(sp.savedMask[u])
                << "stage " << s << " unit " << u
                << " both saved and offloaded";
            // Same partition => comparable unit index: the unit the
            // tri-choice solver offloads was recomputed (or saved)
            // by the recompute-only plan, never nonexistent.
            if (sp.firstLayer == base.plan.stages[s].firstLayer &&
                u < base.plan.stages[s].savedMask.size() &&
                !base.plan.stages[s].savedMask[u])
                ++previously_recomputed;
        }
    }
    EXPECT_GE(offloaded_units, 1)
        << "tight budget produced no offloaded unit";
    EXPECT_GT(offload_bytes, 0u);
    EXPECT_GE(previously_recomputed, 1)
        << "offload only absorbed units the baseline kept on device";
    EXPECT_LE(off.plan.timing.total,
              base.plan.timing.total * (1.0 + 1e-9));

    // The wire round-trip preserves every offload annotation.
    const std::string text = planToJsonString(off.plan, 2);
    const ParseResult<PipelinePlan> back =
        tryPlanFromJsonString(text);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(planToJsonString(back.value(), 2), text);

    // The schedule sweep considers offload alongside v and never
    // returns something worse than the plain tri-choice 1F1B plan.
    const PlanResult best =
        makeBestSchedulePlan(pm, PlanMethod::AdaPipe, tri);
    ASSERT_TRUE(best.ok) << best.oomReason;
    EXPECT_LE(best.plan.timing.total,
              off.plan.timing.total * (1.0 + 1e-9));
}

TEST(OffloadPlanMapping, MaskDecodesAndRuntimeExecutesIt)
{
    // Plan -> StageSpec decode: an offloaded unit turns its whole
    // block into a host-offloaded block (with a rounding note when
    // the plan offloaded only part of the block), and the mapped
    // specs still train bit-identically.
    const TinyLmConfig cfg = smallConfig();
    TrainConfig train;
    train.seqLen = 16;
    train.globalBatch = 4;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = 2;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        tinyLmModelConfig(cfg), train, par, clusterA(1));
    PlanResult planned = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(planned.ok) << planned.oomReason;
    PipelinePlan plan = planned.plan;

    // Mark stage 0, unit 1 (block 0's first Attention unit) as
    // offloaded instead of saved.
    ASSERT_GE(plan.stages[0].savedMask.size(), 2u);
    plan.offload = true;
    plan.stages[0].savedMask[1] = false;
    plan.stages[0].offloadMask.assign(
        plan.stages[0].savedMask.size(), false);
    plan.stages[0].offloadMask[1] = true;

    const StageMapping mapping = stageSpecsFromPlan(plan, cfg);
    ASSERT_FALSE(mapping.stages.empty());
    ASSERT_FALSE(mapping.stages[0].offload.empty());
    EXPECT_TRUE(mapping.stages[0].offload[0])
        << "block 0 should decode as offloaded";
    EXPECT_EQ(mapping.stages[0].recompute[0], BlockRecompute::None);
    bool partial_note = false;
    for (const std::string &note : mapping.notes)
        partial_note |=
            note.find("whole-block host offload") !=
            std::string::npos;
    EXPECT_TRUE(partial_note) << "partial offload note missing";

    RuntimeOptions opts = smallOpts();
    opts.offloadSync = true;
    const std::vector<double> ref =
        referenceLosses(cfg, opts, mapping.stages);
    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run =
        runPipeline(model, mapping.stages, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.losses, ref);
    EXPECT_GT(metrics.counter("offload.evictions"), 0);
}

TEST(OffloadReplan, DegradedHostLinkShiftsUnitsBackToRecompute)
{
    // A degraded PCIe link makes offload expensive: replanning under
    // hostLinkFactor must offload no more than the healthy plan, and
    // a severe degradation on a tight budget should shift at least
    // one unit back to recomputation.
    TrainConfig train;
    train.seqLen = 16384;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 8;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(gpt3_175b(), train, par, clusterA(8));
    StageCostOptions opts;
    opts.memBudgetFraction = 0.4;
    opts.offload.enabled = true;

    auto offloaded_units = [](const PipelinePlan &plan) {
        int n = 0;
        for (const StagePlan &sp : plan.stages)
            for (const bool off : sp.offloadMask)
                n += off ? 1 : 0;
        return n;
    };

    DegradedScenario healthy;
    const ReplanResult base = replanDegraded(pm, healthy, opts);
    ASSERT_TRUE(base.ok) << base.reason;
    const int healthy_offloaded = offloaded_units(base.plan);
    ASSERT_GE(healthy_offloaded, 1)
        << "healthy tight-budget plan offloads nothing";

    DegradedScenario slow_link;
    slow_link.hostLinkFactor = 0.01; // two orders of magnitude
    const ReplanResult degraded =
        replanDegraded(pm, slow_link, opts);
    ASSERT_TRUE(degraded.ok) << degraded.reason;
    EXPECT_LT(offloaded_units(degraded.plan), healthy_offloaded);

    DegradedScenario bad;
    bad.hostLinkFactor = 0.0;
    EXPECT_FALSE(replanDegraded(pm, bad, opts).ok);
    bad.hostLinkFactor = 1.5;
    const ReplanResult over = replanDegraded(pm, bad, opts);
    EXPECT_FALSE(over.ok);
    EXPECT_NE(over.reason.find("host link factor"),
              std::string::npos)
        << over.reason;
}

} // namespace
} // namespace adapipe
