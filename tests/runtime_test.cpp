/**
 * @file
 * Tests for the pipeline runtime: channel semantics, stage
 * partitioning, the pipeline-vs-single-threaded loss equivalence
 * (paper Fig. 10, measured), memory-prediction ordering and the
 * plan -> stage-spec mapping.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "autograd/trainer.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "memory/memory_model.h"
#include "obs/macros.h"
#include "runtime/channel.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/plan_mapping.h"
#include "sim/interleaved_planner.h"

namespace adapipe {
namespace {

TinyLmConfig
smallConfig()
{
    TinyLmConfig cfg;
    cfg.vocab = 32;
    cfg.dim = 24;
    cfg.blocks = 6;
    cfg.ffnHidden = 48;
    cfg.maxSeq = 32;
    cfg.seed = 42;
    return cfg;
}

RuntimeOptions
smallOpts()
{
    RuntimeOptions opts;
    opts.steps = 3;
    opts.seqLen = 12;
    opts.microBatches = 4;
    opts.lr = 4e-3f;
    opts.dataSeed = 7;
    return opts;
}

/** Single-threaded reference over the identical data stream. */
std::vector<double>
referenceLosses(const TinyLmConfig &cfg, const RuntimeOptions &opts,
                const std::vector<StageSpec> &specs)
{
    TinyLM model(cfg);
    TrainOptions ref;
    ref.steps = opts.steps;
    ref.seqLen = opts.seqLen;
    ref.lr = opts.lr;
    ref.useAdam = opts.useAdam;
    ref.dataSeed = opts.dataSeed;
    ref.microBatches = opts.microBatches;
    for (const StageSpec &spec : specs)
        ref.recompute.insert(ref.recompute.end(),
                             spec.recompute.begin(),
                             spec.recompute.end());
    return trainTinyLM(model, ref).losses;
}

TEST(BoundedChannel, FifoOrder)
{
    BoundedChannel<int> chan(4);
    EXPECT_EQ(chan.capacity(), 4u);
    chan.send(1);
    chan.send(2);
    chan.send(3);
    EXPECT_EQ(chan.size(), 3u);
    EXPECT_EQ(chan.recv(), 1);
    EXPECT_EQ(chan.recv(), 2);
    EXPECT_EQ(chan.recv(), 3);
    EXPECT_EQ(chan.size(), 0u);
}

TEST(BoundedChannel, BackpressureBlocksTheProducer)
{
    BoundedChannel<int> chan(1);
    double blocked_us = 0;
    std::thread producer([&] {
        for (int i = 0; i < 3; ++i)
            blocked_us += chan.send(i);
    });
    // Let the producer fill the single slot and block on the next
    // send, then drain slowly.
    std::vector<int> got;
    for (int i = 0; i < 3; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        got.push_back(chan.recv());
    }
    producer.join();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
    EXPECT_GT(blocked_us, 0.0);
}

TEST(BoundedChannel, RecvReportsWaitTime)
{
    BoundedChannel<int> chan(1);
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        chan.send(7);
    });
    double waited_us = 0;
    EXPECT_EQ(chan.recv(&waited_us), 7);
    producer.join();
    EXPECT_GT(waited_us, 0.0);
}

TEST(BoundedChannel, CloseWakesBlockedSender)
{
    BoundedChannel<int> chan(1);
    chan.send(0);
    std::thread sender([&] {
        // Blocks on the full channel until close() wakes it; the
        // send must fail, never silently drop the item.
        EXPECT_THROW(chan.send(1), ChannelClosedError);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    chan.close();
    sender.join();
}

TEST(BoundedChannel, CloseWakesBlockedReceiver)
{
    BoundedChannel<int> chan(1);
    std::thread receiver(
        [&] { EXPECT_THROW(chan.recv(), ChannelClosedError); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    chan.close();
    receiver.join();
}

TEST(BoundedChannel, RecvDrainsQueuedItemsAfterClose)
{
    BoundedChannel<int> chan(2);
    chan.send(1);
    chan.send(2);
    chan.close();
    EXPECT_TRUE(chan.closed());
    // In-flight tensors are still delivered so a consumer can finish
    // the work it already depends on ...
    EXPECT_EQ(chan.recv(), 1);
    EXPECT_EQ(chan.recv(), 2);
    // ... and only then does the shutdown surface.
    EXPECT_THROW(chan.recv(), ChannelClosedError);
    EXPECT_THROW(chan.send(3), ChannelClosedError);
}

TEST(EvenStageSpecs, SplitsBlocksContiguously)
{
    const auto specs =
        evenStageSpecs(6, 4, BlockRecompute::AttentionOnly);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].firstBlock, 0);
    EXPECT_EQ(specs[0].lastBlock, 1);
    EXPECT_EQ(specs[1].firstBlock, 2);
    EXPECT_EQ(specs[1].lastBlock, 3);
    EXPECT_EQ(specs[2].firstBlock, 4);
    EXPECT_EQ(specs[2].lastBlock, 4);
    EXPECT_EQ(specs[3].firstBlock, 5);
    EXPECT_EQ(specs[3].lastBlock, 5);
    EXPECT_TRUE(specs[0].embedding);
    EXPECT_FALSE(specs[3].embedding);
    EXPECT_TRUE(specs[3].head);
    EXPECT_FALSE(specs[0].head);
    for (const StageSpec &spec : specs) {
        ASSERT_EQ(static_cast<int>(spec.recompute.size()),
                  spec.numBlocks());
        for (const BlockRecompute mode : spec.recompute)
            EXPECT_EQ(mode, BlockRecompute::AttentionOnly);
    }
}

/**
 * The tentpole invariant: the pipeline runtime computes the exact
 * loss trajectory of the single-threaded trainer, for every stage
 * count and recompute mode. The runtime preserves accumulation
 * order, so the match is bit-exact, not just within tolerance.
 */
TEST(PipelineRuntime, MatchesSingleThreadedTrainer)
{
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions opts = smallOpts();
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::AttentionOnly,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        for (const int p : {1, 2, 4}) {
            const auto specs = evenStageSpecs(cfg.blocks, p, mode);
            TinyLM model(cfg);
            const RuntimeResult run =
                runPipeline(model, specs, opts);
            const auto ref = referenceLosses(cfg, opts, specs);
            ASSERT_EQ(run.losses.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(run.losses[i], ref[i])
                    << "p=" << p << " mode="
                    << static_cast<int>(mode) << " step " << i;
            }
        }
    }
}

TEST(PipelineRuntime, TrajectoryIdenticalAcrossStageCounts)
{
    // Same seed, same data stream: partitioning the model over more
    // threads must not change a single float of the training run.
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions opts = smallOpts();
    std::vector<std::vector<double>> all;
    for (const int p : {2, 3, 4}) {
        const auto specs =
            evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
        TinyLM model(cfg);
        all.push_back(runPipeline(model, specs, opts).losses);
    }
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_EQ(all[0], all[i]);
}

TEST(PipelineRuntime, CapacityOneChannelsDoNotDeadlock)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.steps = 2;
    opts.channelCapacity = 1;
    const auto specs =
        evenStageSpecs(cfg.blocks, 3, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_EQ(run.losses, referenceLosses(cfg, opts, specs));
}

TEST(PipelineRuntime, SameSeedSameInitAcrossInstances)
{
    // --seed contract: the model a 4-stage pipeline trains starts
    // from the exact parameters of the single-stage model.
    const TinyLmConfig cfg = smallConfig();
    TinyLM a(cfg);
    TinyLM b(cfg);
    const auto pa = a.params();
    const auto pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        const Tensor &ta = pa[i].value();
        const Tensor &tb = pb[i].value();
        ASSERT_EQ(ta.numel(), tb.numel());
        for (std::int64_t j = 0; j < ta.numel(); ++j)
            ASSERT_EQ(ta[j], tb[j]);
    }
}

TEST(PipelineRuntime, FirstStagePeaksAboveLast)
{
    // Sec. 4.2: stage s keeps p - s micro-batches in flight under
    // 1F1B, so stage 0 holds the most activations and stage p-1 the
    // fewest. The runtime measures per-thread, so the ordering of
    // the memory model must show up in the measurements.
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions opts = smallOpts();
    for (const int p : {2, 4}) {
        ASSERT_GT(
            MemoryModel::inflightMicroBatches(0, p,
                                              opts.microBatches),
            MemoryModel::inflightMicroBatches(p - 1, p,
                                              opts.microBatches));
        const auto specs =
            evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
        TinyLM model(cfg);
        const RuntimeResult run = runPipeline(model, specs, opts);
        ASSERT_EQ(run.stages.size(), static_cast<std::size_t>(p));
        EXPECT_GT(run.stages.front().peakActivationFloats,
                  run.stages.back().peakActivationFloats)
            << "p=" << p;
    }
}

TEST(PipelineRuntime, RecomputeOverheadMonotone)
{
    // More recomputed units => less saved memory, more replayed
    // time. Per-stage peaks are thread-local and deterministic, so
    // the memory ordering is exact; the time ordering is asserted
    // through the checkpoint replay counters/spans below.
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions opts = smallOpts();

    struct Run
    {
        std::int64_t peakSum = 0;
        std::int64_t replays = 0;
        double replayUs = 0;
    };
    auto run_mode = [&](BlockRecompute mode) {
        const auto specs = evenStageSpecs(cfg.blocks, 2, mode);
        TinyLM model(cfg);
        obs::Registry metrics;
        const RuntimeResult run =
            runPipeline(model, specs, opts, &metrics);
        Run out;
        for (const StageMetrics &sm : run.stages)
            out.peakSum += sm.peakActivationFloats;
        out.replays = metrics.counter("checkpoint.replays");
        for (const obs::SpanRecord &span : metrics.spans()) {
            if (span.name == "checkpoint.replay")
                out.replayUs += span.durUs;
        }
        return out;
    };

    const Run none = run_mode(BlockRecompute::None);
    const Run attn = run_mode(BlockRecompute::AttentionOnly);
    const Run full = run_mode(BlockRecompute::Full);

    EXPECT_GT(none.peakSum, attn.peakSum);
    EXPECT_GT(attn.peakSum, full.peakSum);

#if ADAPIPE_OBS_ENABLED
    // One replay per checkpointed segment per backward: attention
    // only checkpoints one segment per block, full recompute one
    // whole-block segment replayed per micro-batch backward.
    EXPECT_EQ(none.replays, 0);
    const std::int64_t backwards =
        static_cast<std::int64_t>(opts.steps) * opts.microBatches;
    EXPECT_EQ(attn.replays, backwards * cfg.blocks);
    EXPECT_EQ(full.replays, backwards * cfg.blocks);
    EXPECT_EQ(none.replayUs, 0.0);
    EXPECT_GT(attn.replayUs, 0.0);
    // Full-block replays rerun attention + FFN + both norms; the
    // attention-only replays are a strict subset of that work.
    EXPECT_GT(full.replayUs, attn.replayUs);
#endif
}

TEST(PipelineRuntime, MergedRegistryCountsEveryOp)
{
    const TinyLmConfig cfg = smallConfig();
    const RuntimeOptions opts = smallOpts();
    const int p = 3;
    const auto specs =
        evenStageSpecs(cfg.blocks, p, BlockRecompute::None);
    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run = runPipeline(model, specs, opts, &metrics);

    const std::int64_t ops = static_cast<std::int64_t>(p) *
                             opts.steps * opts.microBatches;
    EXPECT_EQ(metrics.counter("runtime.fwd_ops"), ops);
    EXPECT_EQ(metrics.counter("runtime.bwd_ops"), ops);
    // Each of the p-1 forward edges and p-1 backward edges carries
    // n tensors per step.
    EXPECT_EQ(metrics.counter("runtime.sends"),
              2 * (p - 1) * opts.steps *
                  static_cast<std::int64_t>(opts.microBatches));
    EXPECT_EQ(metrics.counter("runtime.recvs"),
              metrics.counter("runtime.sends"));

    std::int64_t fwd_spans = 0;
    for (const obs::SpanRecord &span : metrics.spans()) {
        if (span.name == "runtime.forward")
            ++fwd_spans;
    }
    EXPECT_EQ(fwd_spans, ops);

    for (int s = 0; s < p; ++s) {
        const std::string prefix =
            "runtime.stage." + std::to_string(s) + ".";
        EXPECT_GT(metrics.gauge(prefix + "fwd_us"), 0.0);
        EXPECT_GT(metrics.gauge(prefix + "peak_activation_floats"),
                  0.0);
        EXPECT_EQ(
            metrics.gauge(prefix + "peak_activation_floats"),
            static_cast<double>(
                run.stages[static_cast<std::size_t>(s)]
                    .peakActivationFloats));
    }
    EXPECT_EQ(metrics.gauge("runtime.stages"),
              static_cast<double>(p));
}

TEST(PlanMapping, TinyLmModelConfigMatchesTheTinyLm)
{
    const TinyLmConfig cfg = smallConfig();
    const ModelConfig model = tinyLmModelConfig(cfg);
    EXPECT_EQ(model.numBlocks, cfg.blocks);
    EXPECT_EQ(model.hiddenSize, cfg.dim);
    EXPECT_EQ(model.ffnHiddenSize, cfg.ffnHidden);
    EXPECT_EQ(model.vocabSize, cfg.vocab);
    EXPECT_EQ(model.numHeads, cfg.numHeads);
    EXPECT_EQ(model.dtypeBytes, 4);
}

/** Plan the tiny LM in-process for mapping tests. */
PlanResult
planTinyLm(const TinyLmConfig &cfg, int p, int n, PlanMethod method)
{
    TrainConfig train;
    train.seqLen = 12;
    train.microBatch = 1;
    train.globalBatch = n;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = p;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        tinyLmModelConfig(cfg), train, par, clusterA(1));
    return makePlan(pm, method, {});
}

TEST(PlanMapping, DappleBaselinesDecodeToUniformModes)
{
    const TinyLmConfig cfg = smallConfig();
    const auto full =
        planTinyLm(cfg, 2, 4, PlanMethod::DappleFull);
    ASSERT_TRUE(full.ok);
    const StageMapping mf = stageSpecsFromPlan(full.plan, cfg);
    ASSERT_EQ(mf.stages.size(), 2u);
    int covered = 0;
    for (const StageSpec &spec : mf.stages) {
        EXPECT_EQ(spec.firstBlock, covered);
        covered = spec.lastBlock + 1;
        for (const BlockRecompute mode : spec.recompute)
            EXPECT_EQ(mode, BlockRecompute::Full);
    }
    EXPECT_EQ(covered, cfg.blocks);
    EXPECT_TRUE(mf.stages.front().embedding);
    EXPECT_TRUE(mf.stages.back().head);

    const auto none = planTinyLm(cfg, 2, 4, PlanMethod::DappleNon);
    ASSERT_TRUE(none.ok);
    const StageMapping mn = stageSpecsFromPlan(none.plan, cfg);
    for (const StageSpec &spec : mn.stages) {
        for (const BlockRecompute mode : spec.recompute)
            EXPECT_EQ(mode, BlockRecompute::None);
    }
}

TEST(PlanMapping, AdaPipePlanCoversAllBlocksAndRuns)
{
    const TinyLmConfig cfg = smallConfig();
    const auto result = planTinyLm(cfg, 2, 4, PlanMethod::AdaPipe);
    ASSERT_TRUE(result.ok);
    const StageMapping mapping =
        stageSpecsFromPlan(result.plan, cfg);
    ASSERT_EQ(mapping.stages.size(), 2u);

    RuntimeOptions opts = smallOpts();
    opts.steps = 2;
    TinyLM model(cfg);
    const RuntimeResult run =
        runPipeline(model, mapping.stages, opts);
    EXPECT_EQ(run.losses,
              referenceLosses(cfg, opts, mapping.stages));
}

TEST(PlanMapping, MismatchedMaskFallsBackToMethod)
{
    const TinyLmConfig cfg = smallConfig();
    auto result = planTinyLm(cfg, 2, 4, PlanMethod::DappleFull);
    ASSERT_TRUE(result.ok);
    // Simulate a plan exported for different unit shapes: the masks
    // no longer match, so the method's uniform policy applies.
    for (StagePlan &sp : result.plan.stages)
        sp.savedMask.clear();
    const StageMapping mapping =
        stageSpecsFromPlan(result.plan, cfg);
    EXPECT_FALSE(mapping.notes.empty());
    for (const StageSpec &spec : mapping.stages) {
        for (const BlockRecompute mode : spec.recompute)
            EXPECT_EQ(mode, BlockRecompute::Full);
    }
}

/**
 * Interleaved 1F1B (virtual stages): v model chunks per worker must
 * reproduce the single-threaded trajectory bit-exactly, because both
 * sides accumulate gradients in increasing micro-batch order.
 */
TEST(PipelineRuntime, InterleavedMatchesSingleThreadedTrainer)
{
    TinyLmConfig cfg = smallConfig();
    cfg.blocks = 8; // one block per chunk up to p=2, v=4
    const RuntimeOptions base = smallOpts();
    const BlockRecompute modes[] = {BlockRecompute::None,
                                    BlockRecompute::AttentionOnly,
                                    BlockRecompute::Full};
    for (const BlockRecompute mode : modes) {
        for (const int v : {1, 2, 4}) {
            const int p = 2;
            const auto specs =
                evenStageSpecs(cfg.blocks, v * p, mode);
            RuntimeOptions opts = base;
            opts.virtualStages = v;
            TinyLM model(cfg);
            const RuntimeResult run =
                runPipeline(model, specs, opts);
            ASSERT_TRUE(run.ok) << run.error;
            ASSERT_EQ(run.stages.size(),
                      static_cast<std::size_t>(v * p));
            const auto ref = referenceLosses(cfg, base, specs);
            ASSERT_EQ(run.losses.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(run.losses[i], ref[i])
                    << "v=" << v << " mode="
                    << static_cast<int>(mode) << " step " << i;
            }
        }
    }
}

TEST(PipelineRuntime, InterleavedSingleWorkerSelfEdges)
{
    // p = 1, v = 2: the worker's forward output loops back to its
    // own second chunk over a self-edge; the capacity clamp must
    // keep this from deadlocking, and the result stays bit-exact.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.virtualStages = 2;
    const auto specs =
        evenStageSpecs(cfg.blocks, 2, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_EQ(run.losses, referenceLosses(cfg, smallOpts(), specs));
}

TEST(PipelineRuntime, InterleavedPerChunkMetricsAndGauges)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.virtualStages = 2;
    const int p = 2;
    const auto specs = evenStageSpecs(
        cfg.blocks, opts.virtualStages * p, BlockRecompute::Full);
    TinyLM model(cfg);
    obs::Registry metrics;
    const RuntimeResult run =
        runPipeline(model, specs, opts, &metrics);
    ASSERT_TRUE(run.ok) << run.error;

    // result.stages is in chain order: chunk g ran on worker g % p.
    ASSERT_EQ(run.stages.size(), 4u);
    const std::int64_t per_chunk_ops =
        static_cast<std::int64_t>(opts.steps) * opts.microBatches;
    for (int g = 0; g < 4; ++g) {
        const StageMetrics &sm =
            run.stages[static_cast<std::size_t>(g)];
        EXPECT_EQ(sm.chainPos, g);
        EXPECT_EQ(sm.fwdOps, per_chunk_ops);
        EXPECT_EQ(sm.bwdOps, per_chunk_ops);
        const std::int64_t blocks = sm.lastBlock - sm.firstBlock + 1;
        EXPECT_GE(blocks, 1);
        // Full recompute: one whole-block replay per block per
        // backward, counted exactly per chunk.
#if ADAPIPE_OBS_ENABLED
        EXPECT_EQ(sm.replayOps, per_chunk_ops * blocks);
#endif
    }

    EXPECT_EQ(metrics.gauge("runtime.virtual_stages"), 2.0);
    for (int r = 0; r < p; ++r) {
        for (int c = 0; c < 2; ++c) {
            const std::string prefix =
                "runtime.stage." + std::to_string(r) + ".chunk." +
                std::to_string(c) + ".";
            EXPECT_GT(metrics.gauge(prefix + "fwd_us"), 0.0)
                << prefix;
            EXPECT_GT(metrics.gauge(prefix + "bwd_us"), 0.0)
                << prefix;
        }
    }
}

TEST(PipelineRuntime, KilledWorkerTerminatesWithDiagnostic)
{
    // Regression for the shutdown deadlock: a worker dying mid-step
    // used to leave its peers blocked forever inside send()/recv().
    // Now the failure closes every channel and the run returns an
    // error naming the worker.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.injectFailStage = 1;
    opts.injectFailAfterOps = 3;
    const auto specs =
        evenStageSpecs(cfg.blocks, 3, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_NE(run.error.find("worker 1"), std::string::npos)
        << run.error;
    EXPECT_NE(run.error.find("injected failure"), std::string::npos)
        << run.error;
}

TEST(PipelineRuntime, KilledInterleavedWorkerAlsoTerminates)
{
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.virtualStages = 2;
    opts.injectFailStage = 0;
    opts.injectFailAfterOps = 2;
    const auto specs =
        evenStageSpecs(cfg.blocks, 4, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_NE(run.error.find("worker 0"), std::string::npos)
        << run.error;
}

TEST(PipelineRuntime, InvalidInterleavedConfigFailsGracefully)
{
    // p = 3 does not divide micro_batches = 4: the runtime must
    // refuse with a diagnostic naming the fields, not abort.
    const TinyLmConfig cfg = smallConfig();
    RuntimeOptions opts = smallOpts();
    opts.virtualStages = 2;
    const auto specs =
        evenStageSpecs(cfg.blocks, 6, BlockRecompute::None);
    TinyLM model(cfg);
    const RuntimeResult run = runPipeline(model, specs, opts);
    EXPECT_FALSE(run.ok);
    EXPECT_NE(run.error.find("micro_batches"), std::string::npos)
        << run.error;
    EXPECT_NE(run.error.find("virtual_stages"), std::string::npos)
        << run.error;
    EXPECT_TRUE(run.losses.empty());
}

TEST(PlanMapping, InterleavedPlanMapsAndRunsBitExact)
{
    const TinyLmConfig cfg = smallConfig();
    TrainConfig train;
    train.seqLen = 12;
    train.microBatch = 1;
    train.globalBatch = 4;
    ParallelConfig par;
    par.tensor = 1;
    par.pipeline = 2;
    par.data = 1;
    const ProfiledModel pm = buildProfiledModel(
        tinyLmModelConfig(cfg), train, par, clusterA(1));
    const PlanResult result =
        makeInterleavedPlan(pm, PlanMethod::AdaPipe, 2, {});
    ASSERT_TRUE(result.ok) << result.oomReason;
    EXPECT_EQ(result.plan.virtualStages, 2);
    ASSERT_EQ(result.plan.stages.size(), 4u);

    const StageMapping mapping =
        stageSpecsFromPlan(result.plan, cfg);
    EXPECT_EQ(mapping.virtualStages, 2);
    ASSERT_EQ(mapping.stages.size(), 4u);

    RuntimeOptions opts = smallOpts();
    opts.steps = 2;
    opts.virtualStages = mapping.virtualStages;
    TinyLM model(cfg);
    const RuntimeResult run =
        runPipeline(model, mapping.stages, opts);
    ASSERT_TRUE(run.ok) << run.error;
    RuntimeOptions ref_opts = opts;
    EXPECT_EQ(run.losses,
              referenceLosses(cfg, ref_opts, mapping.stages));
}

} // namespace
} // namespace adapipe
