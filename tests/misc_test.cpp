/**
 * @file
 * Edge cases and failure injection across modules: invalid
 * configurations, degenerate pipeline shapes (n < p), empty ranges
 * and the panic paths of the plan/result types.
 */

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/plan.h"
#include "core/recompute_dp.h"
#include "core/planner.h"
#include "hw/cluster.h"
#include "hw/profiler.h"
#include "model/model_config.h"
#include "sim/pipeline_sim.h"
#include "sim/schedule.h"

namespace adapipe {
namespace {

TEST(EdgeCases, PlanResultValuePanicsWhenInfeasible)
{
    PlanResult r;
    r.ok = false;
    r.oomReason = "stage 0 too large";
    EXPECT_DEATH(r.value(), "infeasible");
}

TEST(EdgeCases, TrainConfigRejectsIndivisibleBatch)
{
    TrainConfig train;
    train.globalBatch = 10;
    ParallelConfig par;
    par.data = 4;
    EXPECT_DEATH(train.microBatches(par), "not divisible");
}

TEST(EdgeCases, ModelValidateCatchesBadGeometry)
{
    ModelConfig m = tinyTestModel();
    m.hiddenSize = 65; // not divisible by 4 heads
    EXPECT_DEATH(m.validate(), "not divisible");
    m = tinyTestModel();
    m.numBlocks = 0;
    EXPECT_DEATH(m.validate(), "non-positive");
    m = tinyTestModel();
    m.numKvHeads = 3; // heads % kv != 0
    EXPECT_DEATH(m.validate(), "not divisible");
}

TEST(EdgeCases, DeviceValidation)
{
    DeviceSpec d = a100_80gb();
    d.reservedBytes = d.memCapacity;
    EXPECT_DEATH(d.validate(), "reserve exceeds capacity");
    d = a100_80gb();
    d.peakFlops = 0;
    EXPECT_DEATH(d.validate(), "invalid specs");
}

TEST(EdgeCases, FewerMicroBatchesThanStages)
{
    // n < p: the warmup caps at n forwards; the schedule is valid
    // and every stage holds at most n activations.
    const int p = 4;
    const int n = 2;
    const std::vector<StageTimes> stages(p, StageTimes{1.0, 2.0});
    const SimResult sim = simulate(build1F1B(p, n), stages, {});
    for (int s = 0; s < p; ++s)
        EXPECT_LE(sim.peakAlive[s], n);
    // The closed form assumes a full pipeline (n >= p, the paper's
    // operating regime); with n < p its warmup terms overcount, so
    // it degrades to a conservative upper bound here.
    const PipelineTiming model = evaluate1F1B(stages, n);
    EXPECT_GE(model.total, sim.iterationTime - 1e-9);
    EXPECT_LE(model.total, 1.5 * sim.iterationTime);
}

TEST(EdgeCases, SingleMicroBatch)
{
    const int p = 3;
    const std::vector<StageTimes> stages(p, StageTimes{1.0, 2.0});
    const SimResult sim = simulate(build1F1B(p, 1), stages, {});
    // One micro-batch: pure serial traversal, no overlap.
    EXPECT_NEAR(sim.iterationTime, p * 3.0, 1e-9);
    for (int s = 0; s < p; ++s)
        EXPECT_EQ(sim.peakAlive[s], 1);
}

TEST(EdgeCases, SingleStagePipeline)
{
    const std::vector<StageTimes> stages{{1.0, 2.0}};
    const SimResult sim = simulate(build1F1B(1, 5), stages, {});
    EXPECT_NEAR(sim.iterationTime, 5 * 3.0, 1e-9);
    EXPECT_EQ(sim.peakAlive[0], 1);
    const PipelineTiming model = evaluate1F1B(stages, 5);
    EXPECT_NEAR(model.total, sim.iterationTime, 1e-9);
}

TEST(EdgeCases, PlannerWithSingleStage)
{
    ModelConfig model = gpt3_13b();
    TrainConfig train;
    train.seqLen = 2048;
    train.globalBatch = 4;
    ParallelConfig par;
    par.tensor = 8;
    par.pipeline = 1;
    par.data = 1;
    const ProfiledModel pm =
        buildProfiledModel(model, train, par, clusterA(1));
    const PlanResult r = makePlan(pm, PlanMethod::AdaPipe);
    ASSERT_TRUE(r.ok) << r.oomReason;
    EXPECT_EQ(r.plan.stages.size(), 1u);
    EXPECT_EQ(r.plan.stages[0].firstLayer, 0);
    EXPECT_EQ(r.plan.stages[0].lastLayer, pm.numLayers() - 1);
}

TEST(EdgeCases, LayerAggregatesConsistent)
{
    TrainConfig train;
    train.seqLen = 1024;
    ParallelConfig par;
    par.tensor = 2;
    const auto layers =
        buildLayerSequence(tinyTestModel(), train, par);
    for (const Layer &layer : layers) {
        Flops fwd = 0;
        Bytes mem = 0;
        for (const auto &u : layer.units) {
            fwd += u.flopsFwd;
            mem += u.memSaved;
        }
        EXPECT_DOUBLE_EQ(layer.flopsFwd(), fwd);
        EXPECT_EQ(layer.memSavedAll(), mem);
    }
}

TEST(EdgeCases, MicroBatchSizeScalesWorkload)
{
    // b = 2 doubles per-micro-batch FLOPs and activations.
    TrainConfig b1;
    b1.microBatch = 1;
    b1.seqLen = 1024;
    TrainConfig b2 = b1;
    b2.microBatch = 2;
    ParallelConfig par;
    par.tensor = 2;
    const auto l1 = buildLayerSequence(tinyTestModel(), b1, par);
    const auto l2 = buildLayerSequence(tinyTestModel(), b2, par);
    // Compare a pure GEMM unit (attention q_proj).
    EXPECT_NEAR(l2[1].units[1].flopsFwd / l1[1].units[1].flopsFwd,
                2.0, 1e-9);
    EXPECT_EQ(l2[1].units[1].memSaved, 2 * l1[1].units[1].memSaved);
}

TEST(EdgeCases, CollectiveTimeScalesWithTensorSize)
{
    const ClusterSpec cluster = clusterA(2);
    ParallelConfig par2;
    par2.tensor = 2;
    ParallelConfig par8;
    par8.tensor = 8;
    OperatorProfiler p2(cluster, par2);
    OperatorProfiler p8(cluster, par8);
    // Same payload: more ranks = more latency hops.
    EXPECT_LT(p2.collectiveTime(MiB(64)), p8.collectiveTime(MiB(64)));
}

TEST(EdgeCases, GPipeWithOneStageMatchesSerial)
{
    const std::vector<StageTimes> stages{{1.0, 2.0}};
    const SimResult sim = simulate(buildGPipe(1, 4), stages, {});
    EXPECT_NEAR(sim.iterationTime, 4 * 3.0, 1e-9);
    EXPECT_EQ(sim.peakAlive[0], 4); // all forwards before backwards
}

TEST(EdgeCases, EmptyRecomputeUnitsListIsFine)
{
    const auto r = solveRecomputeKnapsack({}, 1 << 20);
    EXPECT_TRUE(r.saved.empty());
    EXPECT_EQ(r.savedUnits, 0);
    EXPECT_DOUBLE_EQ(r.savedFwdTime, 0.0);
}

} // namespace
} // namespace adapipe
