/**
 * @file
 * Focused tests for StageCostCalculator: budget derivation, the
 * fast path, feasibility edges and cross-model property sweeps.
 */

#include <gtest/gtest.h>

#include "core/stage_cost.h"
#include "hw/cluster.h"
#include "model/model_config.h"

namespace adapipe {
namespace {

ProfiledModel
makePm(const ModelConfig &model, int tensor, int seq, Bytes capacity,
       Bytes reserve = 0)
{
    TrainConfig train;
    train.seqLen = seq;
    train.globalBatch = 32;
    ParallelConfig par;
    par.tensor = tensor;
    par.pipeline = 4;
    par.data = 1;
    ClusterSpec cluster = clusterA(4);
    cluster.device.memCapacity = capacity;
    cluster.device.reservedBytes = reserve;
    return buildProfiledModel(model, train, par, cluster);
}

TEST(StageCost, FastPathSavesEverythingWhenAmple)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 4096, GiB(400));
    StageCostCalculator calc(pm, 4, 32);
    const StageCost &c = calc.cost(0, 0, pm.numLayers() / 2);
    ASSERT_TRUE(c.feasible);
    EXPECT_EQ(c.recompute.savedUnits, c.totalUnits);
    // With everything saved, backward carries no recompute penalty.
    Seconds bwd_all = 0;
    for (int l = 0; l <= pm.numLayers() / 2; ++l)
        bwd_all += pm.layers[l].timeBwdAll();
    EXPECT_NEAR(c.bwd, bwd_all, 1e-12);
}

TEST(StageCost, InfeasibleWhenStaticExceedsCapacity)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 4096, GiB(4));
    StageCostCalculator calc(pm, 4, 32);
    const StageCost &c = calc.cost(0, 0, pm.numLayers() - 4);
    EXPECT_FALSE(c.feasible);
    EXPECT_GT(c.memPeak, pm.memCapacity);
}

TEST(StageCost, TightBudgetRecomputesEverythingOptional)
{
    // Capacity just above the minimal footprint: the knapsack must
    // return only always-saved units, and bwd picks up all
    // recomputable forward time.
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 16384, GiB(400));
    StageCostCalculator calc(pm, 4, 32);
    const StageCost &rich = calc.cost(0, 0, 40);
    ASSERT_TRUE(rich.feasible);

    // Find a capacity where stage 0 fits but can save nothing.
    const ProfiledModel tight = makePm(gpt3_13b(), 8, 16384,
                                       rich.memPeak / 3);
    StageCostCalculator tight_calc(tight, 4, 32);
    const StageCost &c = tight_calc.cost(0, 0, 40);
    if (c.feasible) {
        EXPECT_GE(c.bwd, rich.bwd);
        EXPECT_LE(c.recompute.savedUnits, rich.recompute.savedUnits);
    }
}

TEST(StageCost, InflightCappedByMicroBatches)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 4096, GiB(80));
    StageCostCalculator few(pm, 4, 2); // n = 2 < p = 4
    EXPECT_EQ(few.inflight(0), 2);
    EXPECT_EQ(few.inflight(3), 1);
    StageCostCalculator many(pm, 4, 32);
    EXPECT_EQ(many.inflight(0), 4);
}

TEST(StageCost, P2pChargedToInteriorStagesOnly)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 4096, GiB(400));
    StageCostOptions with;
    with.includeP2p = true;
    StageCostOptions without;
    without.includeP2p = false;
    StageCostCalculator c1(pm, 4, 32, with);
    StageCostCalculator c2(pm, 4, 32, without);

    // Stage 0 (contains layer 0) receives token ids, not a tensor.
    EXPECT_NEAR(c1.cost(0, 0, 10).fwd, c2.cost(0, 0, 10).fwd, 1e-12);
    // Interior stages pay the transfer in both directions.
    EXPECT_NEAR(c1.cost(1, 11, 20).fwd,
                c2.cost(1, 11, 20).fwd + pm.p2pTime, 1e-12);
    EXPECT_NEAR(c1.cost(1, 11, 20).bwd,
                c2.cost(1, 11, 20).bwd + pm.p2pTime, 1e-12);
}

TEST(StageCost, BaselineFullRecomputesBlocksOnly)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 4096, GiB(400));
    StageCostCalculator calc(pm, 4, 32);
    // A stage containing the embedding: the embedding itself is not
    // recomputed under full recomputation.
    const StageCost full = calc.baselineCost(0, 0, 10, true);
    Seconds bwd_all = 0;
    Seconds fwd_blocks = 0;
    for (int l = 0; l <= 10; ++l) {
        bwd_all += pm.layers[l].timeBwdAll();
        if (pm.layers[l].kind != LayerKind::Embedding)
            fwd_blocks += pm.layers[l].timeFwdAll();
    }
    EXPECT_NEAR(full.bwd, bwd_all + fwd_blocks, 1e-12);
}

TEST(StageCostOffload, FastLinkReducesBackwardPenalty)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 16384, GiB(20));
    StageCostOptions plain;
    StageCostCalculator base(pm, 4, 32, plain);
    const StageCost &without = base.cost(0, 0, 40);
    ASSERT_TRUE(without.feasible);

    StageCostOptions hybrid = plain;
    hybrid.offload.enabled = true;
    hybrid.offload.bandwidth = 50.0e9;
    hybrid.offload.overlapFraction = 0.5;
    StageCostCalculator fast(pm, 4, 32, hybrid);
    const StageCost &with = fast.cost(0, 0, 40);
    ASSERT_TRUE(with.feasible);
    EXPECT_LE(with.bwd, without.bwd + 1e-12);
    // Forward time is unchanged: offloading only touches backward.
    EXPECT_NEAR(with.fwd, without.fwd, 1e-12);
}

TEST(StageCostOffload, SlowLinkDegeneratesToRecompute)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 16384, GiB(20));
    StageCostOptions slow;
    slow.offload.enabled = true;
    slow.offload.bandwidth = 1.0e6; // effectively unusable
    slow.offload.overlapFraction = 0.0;
    StageCostCalculator hybrid(pm, 4, 32, slow);
    StageCostCalculator plain(pm, 4, 32);
    const StageCost &a = hybrid.cost(0, 0, 40);
    const StageCost &b = plain.cost(0, 0, 40);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_NEAR(a.bwd, b.bwd, 1e-12);
}

TEST(StageCostOffload, InfiniteLinkRemovesAllPenalty)
{
    const ProfiledModel pm = makePm(gpt3_13b(), 8, 16384, GiB(20));
    StageCostOptions free_link;
    free_link.offload.enabled = true;
    free_link.offload.bandwidth = 1.0e18;
    StageCostCalculator calc(pm, 4, 32, free_link);
    const StageCost &c = calc.cost(0, 0, 40);
    ASSERT_TRUE(c.feasible);
    Seconds bwd_all = 0;
    Seconds fixed_replay = 0;
    for (int l = 0; l <= 40; ++l) {
        bwd_all += pm.layers[l].timeBwdAll();
        for (const auto &u : pm.layers[l].units) {
            // Zero-byte units have nothing to stage to host: they
            // recompute regardless of link speed.
            if (!u.alwaysSaved && u.memSaved == 0)
                fixed_replay += u.timeFwd;
        }
    }
    // Every unit with bytes evicts for free: the only penalty left
    // is the fixed replay of non-stageable units.
    EXPECT_NEAR(c.bwd, bwd_all + fixed_replay, 1e-6);
    EXPECT_GT(c.offloadedUnits, 0);
    EXPECT_NEAR(c.offloadExposed, 0.0, 1e-6);
}

/**
 * Property over models and sequence lengths: a stage's backward
 * time under adaptive recomputation always sits between the
 * no-recompute and full-recompute backward times.
 */
class AdaptiveBwdBounds
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(AdaptiveBwdBounds, BetweenFullAndNone)
{
    const auto [model_idx, seq] = GetParam();
    const ModelConfig model =
        model_idx == 0 ? gpt3_13b() : llama2_70b();
    const ProfiledModel pm = makePm(model, 8, seq, GiB(60));
    StageCostCalculator calc(pm, 4, 32);
    const int mid = pm.numLayers() / 2;
    const StageCost &ada = calc.cost(1, 11, mid);
    const StageCost full = calc.baselineCost(1, 11, mid, true);
    const StageCost none = calc.baselineCost(1, 11, mid, false);
    if (!ada.feasible)
        GTEST_SKIP() << "range infeasible at this capacity";
    EXPECT_GE(ada.bwd, none.bwd - 1e-12);
    // Full recompute also redoes the always-saved output GEMMs, so
    // it is a strict upper bound.
    EXPECT_LE(ada.bwd, full.bwd + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveBwdBounds,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(4096, 8192, 16384)));

} // namespace
} // namespace adapipe
